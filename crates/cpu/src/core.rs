//! The out-of-order core model.
//!
//! [`Core::tick`] advances one cycle: front-end refill, dispatch (with the
//! first-missing-resource stall attribution the paper's Figure 9 is built
//! on), issue/execute with functional-unit contention, and in-order
//! commit. Loads reach the memory system through a [`MemPort`]; committed
//! stores wait in the [`crate::StoreBuffer`] for the drain policy, which
//! runs *outside* the core between ticks.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use tus_sim::sched::earliest;
use tus_sim::stats::names;
use tus_sim::trace::{AttrClass, Attribution, TraceEvent, TraceRecord, Tracer};
use tus_sim::{Addr, CoreId, Cycle, Schedulable, SimConfig, StatSet};

use crate::sb::{ForwardResult, StoreBuffer};
use crate::trace::{OpClass, TraceInst, TraceSource};

/// The core's window to the memory system and the drain-policy layer.
pub trait MemPort {
    /// Attempts store-to-load forwarding from policy-owned buffers (WCBs,
    /// SSB's TSOB) — searched in parallel with the SB and L1D. Returns the
    /// value and the access latency on a hit.
    fn forward_load(&mut self, addr: Addr, size: usize) -> Option<(u64, u64)>;

    /// Issues a load to the memory hierarchy; completion must be delivered
    /// back via [`Core::load_complete`] with the same token.
    fn issue_load(&mut self, addr: Addr, size: usize, token: u64, now: Cycle);

    /// Notifies that a store committed (drives prefetch-at-commit and the
    /// SPB burst detector).
    fn store_committed(&mut self, addr: Addr, size: usize, now: Cycle);

    /// Whether all policy-side store state (WCBs, WOQ, TSOB) has drained —
    /// a fence may only commit when this holds *and* the SB is empty.
    fn fence_drained(&mut self) -> bool;
}

/// Why dispatch stalled in a given cycle (first missing resource).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// Re-order buffer full.
    Rob,
    /// Load queue full.
    Lq,
    /// Store buffer full — the stall class TUS removes.
    Sb,
    /// No free physical register.
    Regs,
}

/// What `dispatch` would do this cycle if nothing else changes first — a
/// read-only mirror of the first iteration of the dispatch loop, used by
/// the idle-skipping kernel both to detect pending work and to attribute
/// skipped cycles to the same stall counter lockstep would have bumped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DispatchClass {
    /// The front end has no instruction to offer (`frontend_idle`).
    FrontEmpty,
    /// The next instruction is blocked on a back-end resource.
    Stall(StallReason),
    /// At least one instruction would dispatch.
    Dispatch,
}

/// Per-core performance counters.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Loads committed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// Fences committed.
    pub fences: u64,
    /// Cycles in which dispatch stalled on a full ROB.
    pub stall_rob: u64,
    /// Cycles in which dispatch stalled on a full load queue.
    pub stall_lq: u64,
    /// Cycles in which dispatch stalled on a full store buffer.
    pub stall_sb: u64,
    /// Cycles in which dispatch stalled on physical registers.
    pub stall_regs: u64,
    /// Cycles in which the front end provided no instruction.
    pub frontend_idle: u64,
    /// Cycles a fence sat at the ROB head waiting for drain.
    pub fence_wait: u64,
    /// Loads forwarded from the SB.
    pub sb_forwards: u64,
    /// Loads forwarded from policy buffers (WCB/TSOB).
    pub policy_forwards: u64,
    /// Loads sent to the memory hierarchy.
    pub mem_loads: u64,
    /// Loads replayed because their line was invalidated before commit
    /// (x86 memory-ordering machine clears).
    pub load_replays: u64,
    /// The stall-attribution ledger: every cycle is charged to exactly
    /// one [`AttrClass`], so `attr.total() == cycles` at any instant
    /// under either kernel. (The `stall_*`/`frontend_idle` counters
    /// above predate it and are *not* a partition — a cycle that both
    /// dispatches and then hits a stall bumps a stall counter but is
    /// attributed to `Dispatch` here.)
    pub attr: Attribution,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RState {
    /// Waiting for `deps_left` producers.
    Waiting,
    /// In the ready queue (or deferred).
    Ready,
    /// Executing; `done_at` holds the completion cycle ([`Cycle::NEVER`]
    /// for loads still in the memory system).
    Issued,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    op: OpClass,
    addr: Addr,
    size: u8,
    #[allow(dead_code)] // kept for debugging dumps
    value: u64,
    state: RState,
    deps_left: u8,
    ready_at: Cycle,
    done_at: Cycle,
    load_value: u64,
    /// The load's value came from the memory hierarchy (not SB/WCB
    /// forwarding) and must replay if the line is invalidated before
    /// commit.
    from_mem: bool,
}

/// Completion times of recently executed instructions, indexed by
/// sequence number modulo a power-of-two window no smaller than the ROB.
///
/// In-flight producers — the only ones whose completion time can still
/// lie in the future — are collision-free: two in-flight sequence
/// numbers differ by less than the ROB size, so they never share a
/// slot. A retired producer's slot may be reclaimed by a newer
/// instruction; a miss there reads as "completed long ago", and a stale
/// hit returns a cycle at or before the present — both exactly how the
/// dispatch dependency check treats retired producers, so replacing the
/// old hash map changes no observable behaviour.
struct CompletionWindow {
    mask: u64,
    tag: Vec<u64>,
    at: Vec<Cycle>,
}

impl CompletionWindow {
    fn new(rob_entries: usize) -> Self {
        let n = rob_entries.next_power_of_two().max(2);
        CompletionWindow {
            mask: n as u64 - 1,
            tag: vec![u64::MAX; n],
            at: vec![Cycle::ZERO; n],
        }
    }

    #[inline]
    fn insert(&mut self, seq: u64, at: Cycle) {
        let i = (seq & self.mask) as usize;
        self.tag[i] = seq;
        self.at[i] = at;
    }

    #[inline]
    fn get(&self, seq: u64) -> Option<Cycle> {
        let i = (seq & self.mask) as usize;
        (self.tag[i] == seq).then(|| self.at[i])
    }
}

/// Consumers waiting on an in-flight producer, in the same
/// sequence-number-modulo-window layout as [`CompletionWindow`]. Only
/// producers that have not yet executed carry waiters, and those are
/// collision-free within the ROB window; a producer's list is drained
/// (and its slot released) exactly once, at execution completion.
struct WaiterWindow {
    mask: u64,
    tag: Vec<u64>,
    lists: Vec<Vec<u64>>,
}

impl WaiterWindow {
    fn new(rob_entries: usize) -> Self {
        let n = rob_entries.next_power_of_two().max(2);
        WaiterWindow {
            mask: n as u64 - 1,
            tag: vec![u64::MAX; n],
            lists: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    #[inline]
    fn push(&mut self, producer: u64, consumer: u64) {
        let i = (producer & self.mask) as usize;
        if self.tag[i] != producer {
            debug_assert_eq!(self.tag[i], u64::MAX, "live waiter slots never collide");
            self.tag[i] = producer;
            self.lists[i].clear();
        }
        self.lists[i].push(consumer);
    }

    /// Claims `producer`'s waiter list (empty slots return `None`). The
    /// caller drains it and hands it back via [`WaiterWindow::restore`]
    /// so the slot keeps its capacity.
    #[inline]
    fn take(&mut self, producer: u64) -> Option<Vec<u64>> {
        let i = (producer & self.mask) as usize;
        if self.tag[i] != producer {
            return None;
        }
        self.tag[i] = u64::MAX;
        Some(std::mem::take(&mut self.lists[i]))
    }

    #[inline]
    fn restore(&mut self, producer: u64, drained: Vec<u64>) {
        let i = (producer & self.mask) as usize;
        self.lists[i] = drained;
    }
}

/// A trace-driven out-of-order core.
pub struct Core {
    id: CoreId,
    cfg: SimConfig,
    trace: Box<dyn TraceSource>,
    trace_done: bool,
    fetch_buf: VecDeque<TraceInst>,
    rob: VecDeque<RobEntry>,
    head_seq: u64,
    next_seq: u64,
    sb: StoreBuffer,
    lq_used: usize,
    int_regs_used: usize,
    fp_regs_used: usize,
    ready_q: BinaryHeap<Reverse<(u64, u64)>>,
    completion: CompletionWindow,
    waiters: WaiterWindow,
    /// Reused buffers for the per-cycle issue loop and the invalidation
    /// snoop (bounded by the issue width / ROB size).
    deferred_scratch: Vec<(u64, u64)>,
    replay_scratch: Vec<u64>,
    record_loads: bool,
    loaded_values: Vec<u64>,
    tracer: Tracer,
    /// Attribution class of the currently open trace span.
    trace_class: AttrClass,
    /// Start cycle of the currently open trace span.
    trace_span_start: Cycle,
    /// Performance counters.
    pub stats: CoreStats,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("rob", &self.rob.len())
            .field("sb", &self.sb.len())
            .field("committed", &self.stats.committed)
            .finish()
    }
}

impl Core {
    /// Creates a core running `trace` under configuration `cfg`.
    pub fn new(id: CoreId, cfg: &SimConfig, trace: Box<dyn TraceSource>) -> Self {
        Core {
            id,
            cfg: *cfg,
            trace,
            trace_done: false,
            fetch_buf: VecDeque::new(),
            rob: VecDeque::with_capacity(cfg.backend.rob_entries),
            head_seq: 0,
            next_seq: 0,
            sb: StoreBuffer::new(cfg.sb.entries, cfg.sb.forward_latency()),
            lq_used: 0,
            int_regs_used: 0,
            fp_regs_used: 0,
            ready_q: BinaryHeap::new(),
            completion: CompletionWindow::new(cfg.backend.rob_entries),
            waiters: WaiterWindow::new(cfg.backend.rob_entries),
            deferred_scratch: Vec::new(),
            replay_scratch: Vec::new(),
            record_loads: false,
            loaded_values: Vec::new(),
            tracer: Tracer::default(),
            trace_class: AttrClass::Dispatch,
            trace_span_start: Cycle::ZERO,
            stats: CoreStats::default(),
        }
    }

    /// Enables trace recording into a ring of `cap` records.
    pub fn trace_enable(&mut self, cap: usize) {
        self.tracer.enable(cap);
    }

    /// Drains recorded trace events, closing the open stall span at
    /// `now` so the timeline has no trailing gap.
    pub fn take_trace(&mut self, now: Cycle) -> Vec<TraceRecord> {
        self.close_span(now);
        self.trace_span_start = now;
        self.tracer.take()
    }

    /// The stall-attribution ledger (`sum == cycles` at any instant).
    pub fn attribution(&self) -> Attribution {
        self.stats.attr
    }

    /// Charges one cycle to `class` and maintains the stall-span
    /// tracking (a span is emitted when the class changes).
    #[inline]
    fn charge_class(&mut self, class: AttrClass, n: u64, now: Cycle) {
        self.stats.attr.charge(class, n);
        if self.tracer.is_enabled() && class != self.trace_class {
            self.close_span(now);
            self.trace_class = class;
            self.trace_span_start = now;
        }
    }

    /// Emits the open span if it is a stall (dispatch intervals are left
    /// implicit — the interesting signal is where cycles were lost).
    fn close_span(&mut self, now: Cycle) {
        if self.trace_class != AttrClass::Dispatch {
            let dur = now.since(self.trace_span_start);
            if dur > 0 {
                self.tracer.emit(
                    self.trace_span_start,
                    dur,
                    TraceEvent::CommitStall { class: self.trace_class },
                );
            }
        }
    }

    /// This core's identifier.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Records every committed load's value (litmus tests, oracles).
    pub fn record_loads(&mut self, on: bool) {
        self.record_loads = on;
    }

    /// Values of committed loads, in program order (when recording).
    pub fn loaded_values(&self) -> &[u64] {
        &self.loaded_values
    }

    /// The store buffer (the drain policy pops committed stores from it).
    pub fn sb(&self) -> &StoreBuffer {
        &self.sb
    }

    /// Mutable access to the store buffer for the drain policy.
    pub fn sb_mut(&mut self) -> &mut StoreBuffer {
        &mut self.sb
    }

    /// Whether the trace is exhausted and the pipeline is empty (the SB
    /// may still hold committed stores for the drain policy).
    pub fn finished(&self) -> bool {
        self.trace_done && self.fetch_buf.is_empty() && self.rob.is_empty()
    }

    /// Instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.stats.committed
    }

    /// Debug description of the ROB head (deadlock diagnostics).
    pub fn describe_head(&self) -> String {
        match self.rob.front() {
            None => "rob empty".to_owned(),
            Some(e) => format!(
                "seq={} op={:?} state={:?} deps_left={} ready_at={} done_at={:?} addr={}",
                e.seq, e.op, e.state, e.deps_left, e.ready_at, e.done_at, e.addr
            ),
        }
    }

    /// Delivers a memory-load completion (token = load sequence number).
    pub fn load_complete(&mut self, token: u64, at: Cycle, value: u64) {
        if token < self.head_seq {
            return; // already squashed/committed (cannot happen today)
        }
        let Some(e) = self.rob_mut(token) else { return };
        debug_assert_eq!(e.op, OpClass::Load);
        if e.state != RState::Issued || e.done_at != Cycle::NEVER {
            // A stale completion for a load that replayed meanwhile.
            return;
        }
        e.done_at = at;
        e.load_value = value;
        e.from_mem = true;
        self.completion.insert(token, at);
        self.wake(token, at);
    }

    /// Replays executed-but-uncommitted loads whose line was invalidated
    /// by a remote write: their bound value may be stale, so they
    /// re-execute. This is the load-queue snoop that preserves load→load
    /// ordering under TSO.
    pub fn on_line_invalidated(&mut self, line: tus_sim::LineAddr, now: Cycle) {
        let head = self.head_seq;
        let mut replays = std::mem::take(&mut self.replay_scratch);
        replays.clear();
        for (i, e) in self.rob.iter_mut().enumerate() {
            if e.op == OpClass::Load
                && e.from_mem
                && e.state == RState::Issued
                && e.done_at != Cycle::NEVER
                && e.addr.line() == line
            {
                e.state = RState::Ready;
                e.done_at = Cycle::NEVER;
                e.ready_at = now + 1;
                e.from_mem = false;
                replays.push(head + i as u64);
            }
        }
        for &seq in &replays {
            self.stats.load_replays += 1;
            self.ready_q.push(Reverse((now.raw() + 1, seq)));
        }
        self.replay_scratch = replays;
    }

    /// Advances one cycle.
    pub fn tick(&mut self, now: Cycle, port: &mut dyn MemPort) {
        self.stats.cycles += 1;
        self.sb.sample_occupancy();
        self.refill_frontend();
        self.commit(now, port);
        self.issue(now, port);
        self.dispatch(now);
    }

    /// Exports the per-core statistics.
    pub fn export_stats(&self) -> StatSet {
        let s = &self.stats;
        let mut out = StatSet::new();
        out.set("cycles", s.cycles as f64);
        out.set("committed", s.committed as f64);
        out.set("loads", s.loads as f64);
        out.set("stores", s.stores as f64);
        out.set("fences", s.fences as f64);
        out.set("stall_rob", s.stall_rob as f64);
        out.set("stall_lq", s.stall_lq as f64);
        out.set(names::STALL_SB, s.stall_sb as f64);
        out.set("stall_regs", s.stall_regs as f64);
        out.set("frontend_idle", s.frontend_idle as f64);
        out.set("fence_wait", s.fence_wait as f64);
        out.set("sb_forwards", s.sb_forwards as f64);
        out.set("policy_forwards", s.policy_forwards as f64);
        out.set("mem_loads", s.mem_loads as f64);
        out.set("load_replays", s.load_replays as f64);
        out.set("sb_searches", self.sb.searches() as f64);
        out.set("sb_peak", self.sb.peak() as f64);
        out.set("sb_mean_occupancy", self.sb.mean_occupancy());
        if s.cycles > 0 {
            out.set("ipc", s.committed as f64 / s.cycles as f64);
        }
        out
    }

    /// Earliest cycle at which `tick` could change core state, given the
    /// drain policy's current answer to [`MemPort::fence_drained`].
    ///
    /// `Some(now)` means "tick me now". A later cycle (or `None`) is only
    /// returned when every pipeline stage is provably a no-op until then:
    /// the front end cannot fetch, the ROB head cannot pop, no ready-queue
    /// entry is due, and dispatch is blocked. External events (memory-load
    /// completions, policy drains freeing the SB) wake the core through the
    /// layers that deliver them, which report their own work.
    pub fn next_work_at(&self, now: Cycle, fence_drained: bool) -> Option<Cycle> {
        // Front-end refill would fetch (or would discover the trace end).
        if !self.trace_done && self.fetch_buf.len() < 2 * self.cfg.backend.dispatch_width {
            return Some(now);
        }
        let mut future: Option<Cycle> = None;
        // Commit: the head pops unless it is a blocked fence; a head still
        // executing completes at `done_at`.
        if let Some(e) = self.rob.front() {
            if e.state == RState::Issued {
                if e.done_at <= now {
                    if !self.fence_blocked(now, fence_drained) {
                        return Some(now);
                    }
                    // A blocked fence only accrues `fence_wait`; the event
                    // that unblocks it lives in the policy/memory layers.
                } else if e.done_at != Cycle::NEVER {
                    future = earliest(future, Some(e.done_at));
                }
            }
        }
        // Issue: any due ready-queue entry is work (popping a stale entry
        // also changes state, so due-ness alone decides).
        if let Some(&Reverse((at, _))) = self.ready_q.peek() {
            if at <= now.raw() {
                return Some(now);
            }
            future = earliest(future, Some(Cycle::new(at)));
        }
        // Dispatch would allocate.
        if self.dispatch_class() == DispatchClass::Dispatch {
            return Some(now);
        }
        future
    }

    /// Charges `n` skipped cycles exactly as `n` lockstep ticks would have,
    /// given that [`Core::next_work_at`] reported no due work throughout
    /// (so the classification below is constant over the stretch).
    pub fn charge_idle(&mut self, n: u64, now: Cycle, fence_drained: bool) {
        self.stats.cycles += n;
        self.sb.sample_occupancy_n(n);
        if self.fence_blocked(now, fence_drained) {
            self.stats.fence_wait += n;
        }
        let class = match self.dispatch_class() {
            DispatchClass::FrontEmpty => {
                self.stats.frontend_idle += n;
                AttrClass::FrontEmpty
            }
            DispatchClass::Stall(StallReason::Rob) => {
                self.stats.stall_rob += n;
                AttrClass::Rob
            }
            DispatchClass::Stall(StallReason::Lq) => {
                self.stats.stall_lq += n;
                AttrClass::Lq
            }
            DispatchClass::Stall(StallReason::Sb) => {
                self.stats.stall_sb += n;
                AttrClass::Sb
            }
            DispatchClass::Stall(StallReason::Regs) => {
                self.stats.stall_regs += n;
                AttrClass::Regs
            }
            DispatchClass::Dispatch => unreachable!("idle cycle cannot dispatch"),
        };
        self.charge_class(class, n, now);
    }

    /// Whether the ROB head is a fence that commit would hold this cycle.
    fn fence_blocked(&self, now: Cycle, fence_drained: bool) -> bool {
        self.rob.front().is_some_and(|e| {
            e.op == OpClass::Fence
                && e.state == RState::Issued
                && e.done_at <= now
                && (self.sb.has_committed() || !fence_drained)
        })
    }

    /// Read-only mirror of the first `dispatch` iteration (see
    /// [`DispatchClass`]).
    fn dispatch_class(&self) -> DispatchClass {
        let Some(inst) = self.fetch_buf.front() else {
            return DispatchClass::FrontEmpty;
        };
        if self.rob.len() >= self.cfg.backend.rob_entries {
            return DispatchClass::Stall(StallReason::Rob);
        }
        match inst.op {
            OpClass::Load => {
                if self.lq_used >= self.cfg.backend.lq_entries {
                    return DispatchClass::Stall(StallReason::Lq);
                }
            }
            OpClass::Store => {
                if self.sb.is_full() {
                    return DispatchClass::Stall(StallReason::Sb);
                }
            }
            _ => {}
        }
        let needs_reg = inst.op != OpClass::Store && inst.op != OpClass::Fence;
        if needs_reg {
            if inst.op.is_fp() {
                if self.fp_regs_used >= self.cfg.backend.fp_regs {
                    return DispatchClass::Stall(StallReason::Regs);
                }
            } else if self.int_regs_used >= self.cfg.backend.int_regs {
                return DispatchClass::Stall(StallReason::Regs);
            }
        }
        DispatchClass::Dispatch
    }

    // ------------------------------------------------------------------

    fn rob_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        let idx = seq.checked_sub(self.head_seq)? as usize;
        self.rob.get_mut(idx)
    }

    fn refill_frontend(&mut self) {
        // Fetch/decode/rename collapsed into one stage with the narrowest
        // width (rename, 6) as bandwidth.
        let width = self
            .cfg
            .frontend
            .rename_width
            .min(self.cfg.frontend.decode_width)
            .min(self.cfg.frontend.fetch_width);
        for _ in 0..width {
            if self.fetch_buf.len() >= 2 * self.cfg.backend.dispatch_width {
                break;
            }
            match self.trace.next_inst() {
                Some(i) => self.fetch_buf.push_back(i),
                None => {
                    self.trace_done = true;
                    break;
                }
            }
        }
    }

    fn dispatch(&mut self, now: Cycle) {
        let mut dispatched = 0;
        let mut stall: Option<StallReason> = None;
        while dispatched < self.cfg.backend.dispatch_width {
            let Some(&inst) = self.fetch_buf.front() else {
                if dispatched == 0 {
                    self.stats.frontend_idle += 1;
                }
                break;
            };
            if self.rob.len() >= self.cfg.backend.rob_entries {
                stall = Some(StallReason::Rob);
                break;
            }
            match inst.op {
                OpClass::Load => {
                    if self.lq_used >= self.cfg.backend.lq_entries {
                        stall = Some(StallReason::Lq);
                        break;
                    }
                }
                OpClass::Store => {
                    if self.sb.is_full() {
                        stall = Some(StallReason::Sb);
                        break;
                    }
                }
                _ => {}
            }
            let needs_reg = inst.op != OpClass::Store && inst.op != OpClass::Fence;
            if needs_reg {
                if inst.op.is_fp() {
                    if self.fp_regs_used >= self.cfg.backend.fp_regs {
                        stall = Some(StallReason::Regs);
                        break;
                    }
                } else if self.int_regs_used >= self.cfg.backend.int_regs {
                    stall = Some(StallReason::Regs);
                    break;
                }
            }
            // All resources available: allocate.
            self.fetch_buf.pop_front();
            let seq = self.next_seq;
            self.next_seq += 1;
            if needs_reg {
                if inst.op.is_fp() {
                    self.fp_regs_used += 1;
                } else {
                    self.int_regs_used += 1;
                }
            }
            match inst.op {
                OpClass::Load => self.lq_used += 1,
                OpClass::Store => {
                    self.sb
                        .push(inst.addr, inst.size, inst.value, seq)
                        .expect("checked not full");
                }
                _ => {}
            }
            let mut e = RobEntry {
                seq,
                op: inst.op,
                addr: inst.addr,
                size: inst.size,
                value: inst.value,
                state: RState::Waiting,
                deps_left: 0,
                ready_at: now + 1,
                load_value: 0,
                done_at: Cycle::NEVER,
                from_mem: false,
            };
            if inst.op == OpClass::Fence {
                // Fences do not execute; their ordering is enforced at
                // commit.
                e.state = RState::Issued;
                e.done_at = now;
                self.completion.insert(seq, now);
            } else {
                for d in [inst.dep1, inst.dep2] {
                    if d == 0 {
                        continue;
                    }
                    let Some(p) = seq.checked_sub(d as u64) else {
                        continue;
                    };
                    if let Some(c) = self.completion.get(p) {
                        if e.ready_at < c {
                            e.ready_at = c;
                        }
                    } else if p >= self.head_seq {
                        // Producer still in flight without a known
                        // completion time.
                        self.waiters.push(p, seq);
                        e.deps_left += 1;
                    }
                    // Producers older than the window completed long ago.
                }
                if e.deps_left == 0 {
                    e.state = RState::Ready;
                    self.ready_q.push(Reverse((e.ready_at.raw(), seq)));
                }
            }
            self.rob.push_back(e);
            dispatched += 1;
        }
        if let Some(r) = stall {
            match r {
                StallReason::Rob => self.stats.stall_rob += 1,
                StallReason::Lq => self.stats.stall_lq += 1,
                StallReason::Sb => self.stats.stall_sb += 1,
                StallReason::Regs => self.stats.stall_regs += 1,
            }
        }
        // Exclusive attribution: a cycle that dispatched anything is a
        // dispatch cycle even if the loop then hit a stall; otherwise the
        // first missing resource (or the empty front end) owns it. The
        // three arms are exhaustive — `dispatched == 0` with no stall
        // implies the fetch buffer was empty on the first iteration.
        let class = if dispatched > 0 {
            AttrClass::Dispatch
        } else {
            match stall {
                Some(StallReason::Rob) => AttrClass::Rob,
                Some(StallReason::Lq) => AttrClass::Lq,
                Some(StallReason::Sb) => AttrClass::Sb,
                Some(StallReason::Regs) => AttrClass::Regs,
                None => AttrClass::FrontEmpty,
            }
        };
        self.charge_class(class, 1, now);
    }

    fn issue(&mut self, now: Cycle, port: &mut dyn MemPort) {
        let mut issued = 0;
        let mut int_only_free = self.cfg.backend.int_only_alus;
        let mut general_free = self.cfg.backend.general_alus;
        let mut deferred = std::mem::take(&mut self.deferred_scratch);
        deferred.clear();
        while issued < self.cfg.backend.issue_width {
            let Some(&Reverse((at, seq))) = self.ready_q.peek() else {
                break;
            };
            if at > now.raw() {
                break;
            }
            self.ready_q.pop();
            let Some(e) = self.rob_mut(seq) else { continue };
            if e.state != RState::Ready {
                continue;
            }
            let op = e.op;
            // Functional-unit constraints.
            match op {
                OpClass::IntAlu => {
                    if int_only_free > 0 {
                        int_only_free -= 1;
                    } else if general_free > 0 {
                        general_free -= 1;
                    } else {
                        deferred.push((now.raw() + 1, seq));
                        continue;
                    }
                }
                o if o.needs_general_alu() => {
                    if general_free > 0 {
                        general_free -= 1;
                    } else {
                        deferred.push((now.raw() + 1, seq));
                        continue;
                    }
                }
                _ => {} // loads/stores/fences use the AGU/ports
            }
            match op {
                OpClass::Load => {
                    let (addr, size) = {
                        let e = self.rob_mut(seq).expect("entry exists");
                        (e.addr, e.size as usize)
                    };
                    match self.sb.forward(addr, size, seq) {
                        ForwardResult::Hit { value } => {
                            self.stats.sb_forwards += 1;
                            let done = now + self.sb.forward_latency();
                            self.finish_exec(seq, done, Some(value));
                        }
                        ForwardResult::NotReady | ForwardResult::Partial => {
                            deferred.push((now.raw() + 1, seq));
                            continue;
                        }
                        ForwardResult::Miss => {
                            if let Some((value, lat)) = port.forward_load(addr, size) {
                                self.stats.policy_forwards += 1;
                                self.finish_exec(seq, now + lat, Some(value));
                            } else {
                                self.stats.mem_loads += 1;
                                let e = self.rob_mut(seq).expect("entry exists");
                                e.state = RState::Issued;
                                port.issue_load(addr, size, seq, now);
                            }
                        }
                    }
                }
                OpClass::Store => {
                    // Execution produces address + data.
                    self.sb.mark_executed(seq);
                    self.finish_exec(seq, now + 1, None);
                }
                OpClass::Fence => unreachable!("fences never enter the ready queue"),
                alu => {
                    let lat = self.latency_of(alu);
                    self.finish_exec(seq, now + lat, None);
                }
            }
            issued += 1;
        }
        for &(at, seq) in &deferred {
            if let Some(e) = self.rob_mut(seq) {
                e.ready_at = Cycle::new(at);
            }
            self.ready_q.push(Reverse((at, seq)));
        }
        self.deferred_scratch = deferred;
    }

    fn latency_of(&self, op: OpClass) -> u64 {
        let l = &self.cfg.latency;
        match op {
            OpClass::IntAlu => l.int_add,
            OpClass::IntMul => l.int_mul,
            OpClass::IntDiv => l.int_div,
            OpClass::FpAdd => l.fp_add,
            OpClass::FpMul => l.fp_mul,
            OpClass::FpDiv => l.fp_div,
            _ => 1,
        }
    }

    fn finish_exec(&mut self, seq: u64, done: Cycle, load_value: Option<u64>) {
        let e = self.rob_mut(seq).expect("entry exists");
        e.state = RState::Issued;
        e.done_at = done;
        if let Some(v) = load_value {
            e.load_value = v;
        }
        self.completion.insert(seq, done);
        self.wake(seq, done);
    }

    fn wake(&mut self, producer: u64, done: Cycle) {
        let Some(mut ws) = self.waiters.take(producer) else {
            return;
        };
        for c in ws.drain(..) {
            let Some(e) = self.rob_mut(c) else { continue };
            if e.ready_at < done {
                e.ready_at = done;
            }
            debug_assert!(e.deps_left > 0);
            e.deps_left -= 1;
            if e.deps_left == 0 && e.state == RState::Waiting {
                e.state = RState::Ready;
                let at = e.ready_at.raw();
                self.ready_q.push(Reverse((at, c)));
            }
        }
        self.waiters.restore(producer, ws);
    }

    fn commit(&mut self, now: Cycle, port: &mut dyn MemPort) {
        let mut committed = 0;
        while committed < self.cfg.backend.commit_width {
            let Some(e) = self.rob.front() else { break };
            if e.state != RState::Issued || e.done_at > now {
                break;
            }
            // A fence commits only once every *older* store has left the
            // SB (older stores are exactly the committed entries — commit
            // is in order) and the policy-side buffers have drained.
            if e.op == OpClass::Fence && (self.sb.has_committed() || !port.fence_drained()) {
                self.stats.fence_wait += 1;
                break;
            }
            let e = *e;
            match e.op {
                OpClass::Load => {
                    self.lq_used -= 1;
                    self.int_regs_used -= 1;
                    self.stats.loads += 1;
                    if self.record_loads {
                        self.loaded_values.push(e.load_value);
                    }
                }
                OpClass::Store => {
                    self.sb.mark_committed(e.seq);
                    port.store_committed(e.addr, e.size as usize, now);
                    self.stats.stores += 1;
                }
                OpClass::Fence => self.stats.fences += 1,
                op => {
                    if op.is_fp() {
                        self.fp_regs_used -= 1;
                    } else {
                        self.int_regs_used -= 1;
                    }
                }
            }
            self.rob.pop_front();
            self.head_seq += 1;
            self.stats.committed += 1;
            committed += 1;
        }
    }
}

impl Schedulable for Core {
    fn next_work(&self, now: Cycle) -> Option<Cycle> {
        // Without the policy's fence answer, assume drained: that weakens
        // the fence-blocked test and can only over-claim work, which is the
        // safe direction for the skip kernel. The system kernel uses
        // `next_work_at` with the real answer.
        self.next_work_at(now, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecTrace;

    /// A memory port where every load hits in 5 cycles and fences drain
    /// instantly (the SB itself is drained by the test).
    struct NullPort {
        issued: Vec<(Addr, u64)>,
        committed_stores: Vec<Addr>,
    }

    impl NullPort {
        fn new() -> Self {
            NullPort {
                issued: Vec::new(),
                committed_stores: Vec::new(),
            }
        }
    }

    impl MemPort for NullPort {
        fn forward_load(&mut self, _addr: Addr, _size: usize) -> Option<(u64, u64)> {
            Some((0, 5))
        }
        fn issue_load(&mut self, addr: Addr, _size: usize, token: u64, _now: Cycle) {
            self.issued.push((addr, token));
        }
        fn store_committed(&mut self, addr: Addr, _size: usize, _now: Cycle) {
            self.committed_stores.push(addr);
        }
        fn fence_drained(&mut self) -> bool {
            true
        }
    }

    fn run(core: &mut Core, port: &mut NullPort, max_cycles: u64, drain_sb: bool) -> u64 {
        for t in 0..max_cycles {
            core.tick(Cycle::new(t), port);
            if drain_sb {
                while core.sb().head().is_some_and(|e| e.committed) {
                    core.sb_mut().pop_head();
                }
            }
            if core.finished() && core.sb().is_empty() {
                return t;
            }
        }
        panic!("core did not finish in {max_cycles} cycles");
    }

    fn default_core(insts: Vec<TraceInst>) -> Core {
        let cfg = SimConfig::default();
        Core::new(CoreId::new(0), &cfg, Box::new(VecTrace::new(insts)))
    }

    #[test]
    fn commits_all_instructions() {
        let mut core = default_core(vec![TraceInst::alu(); 100]);
        let mut port = NullPort::new();
        run(&mut core, &mut port, 1000, true);
        assert_eq!(core.committed(), 100);
    }

    #[test]
    fn independent_alus_reach_high_ipc() {
        let n = 10_000;
        let mut core = default_core(vec![TraceInst::alu(); n]);
        let mut port = NullPort::new();
        let cycles = run(&mut core, &mut port, 100_000, true);
        let ipc = n as f64 / cycles as f64;
        // Limited by 4 ALUs; should sustain close to 4.
        assert!(ipc > 3.0, "ipc {ipc}");
    }

    #[test]
    fn dependency_chain_serializes() {
        let n = 1000;
        let insts: Vec<_> = (0..n).map(|_| TraceInst::alu().with_deps(1, 0)).collect();
        let mut core = default_core(insts);
        let mut port = NullPort::new();
        let cycles = run(&mut core, &mut port, 100_000, true);
        // A chain of 1-cycle ops commits about one per cycle.
        assert!(cycles as usize >= n - 1, "cycles {cycles} for chain of {n}");
        assert!((cycles as usize) < n + 200, "cycles {cycles}");
    }

    #[test]
    fn div_chain_serializes_at_div_latency() {
        let n = 200;
        let mut insts = vec![TraceInst::alu()];
        for _ in 0..n {
            insts.push(TraceInst {
                op: OpClass::IntDiv,
                ..TraceInst::alu().with_deps(1, 0)
            });
        }
        let mut core = default_core(insts);
        let mut port = NullPort::new();
        let cycles = run(&mut core, &mut port, 100_000, true);
        assert!(cycles >= 12 * n as u64, "cycles {cycles}");
    }

    #[test]
    fn sb_full_stalls_dispatch_and_attributes() {
        // Stores are never drained: the SB fills and dispatch stalls on it.
        let cfg = SimConfig::builder().sb_entries(8).build();
        let insts: Vec<_> = (0..64)
            .map(|i| TraceInst::store(Addr::new(i * 64), 8, i))
            .collect();
        let mut core = Core::new(CoreId::new(0), &cfg, Box::new(VecTrace::new(insts)));
        let mut port = NullPort::new();
        for t in 0..200 {
            core.tick(Cycle::new(t), &mut port);
        }
        assert!(core.stats.stall_sb > 0, "no SB stalls recorded");
        assert_eq!(core.sb().len(), 8);
        // Commits stopped at SB capacity.
        assert_eq!(core.committed(), 8);
    }

    #[test]
    fn store_forwarding_to_younger_load() {
        let a = Addr::new(0x100);
        let insts = vec![TraceInst::store(a, 8, 42), TraceInst::load(a, 8)];
        let mut core = default_core(insts);
        core.record_loads(true);
        let mut port = NullPort::new();
        run(&mut core, &mut port, 1000, true);
        assert_eq!(core.loaded_values(), &[42]);
        assert_eq!(core.stats.sb_forwards, 1);
        assert_eq!(core.stats.mem_loads, 0);
    }

    #[test]
    fn loads_issue_to_port_on_sb_miss() {
        let cfg = SimConfig::default();
        let insts = vec![TraceInst::load(Addr::new(0x200), 8)];
        let mut core = Core::new(CoreId::new(0), &cfg, Box::new(VecTrace::new(insts)));
        struct MissPort(Vec<u64>);
        impl MemPort for MissPort {
            fn forward_load(&mut self, _a: Addr, _s: usize) -> Option<(u64, u64)> {
                None
            }
            fn issue_load(&mut self, _a: Addr, _s: usize, token: u64, _n: Cycle) {
                self.0.push(token);
            }
            fn store_committed(&mut self, _a: Addr, _s: usize, _n: Cycle) {}
            fn fence_drained(&mut self) -> bool {
                true
            }
        }
        let mut port = MissPort(Vec::new());
        for t in 0..20 {
            core.tick(Cycle::new(t), &mut port);
        }
        assert_eq!(port.0.len(), 1, "load must reach the memory system");
        let token = port.0[0];
        assert_eq!(core.committed(), 0, "load cannot commit before data");
        core.load_complete(token, Cycle::new(25), 7);
        core.record_loads(true);
        for t in 20..40 {
            core.tick(Cycle::new(t), &mut port);
        }
        assert_eq!(core.committed(), 1);
        assert_eq!(core.loaded_values(), &[7]);
    }

    #[test]
    fn fence_waits_for_sb_drain() {
        let insts = vec![
            TraceInst::store(Addr::new(0), 8, 1),
            TraceInst::fence(),
            TraceInst::alu(),
        ];
        let mut core = default_core(insts);
        let mut port = NullPort::new();
        // Without draining the SB, the fence never commits.
        for t in 0..100 {
            core.tick(Cycle::new(t), &mut port);
        }
        assert_eq!(core.committed(), 1, "only the store commits");
        assert!(core.stats.fence_wait > 0);
        // Drain the SB: the fence and the ALU commit.
        while core.sb().head().is_some_and(|e| e.committed) {
            core.sb_mut().pop_head();
        }
        for t in 100..200 {
            core.tick(Cycle::new(t), &mut port);
        }
        assert_eq!(core.committed(), 3);
    }

    #[test]
    fn store_commit_notifies_port() {
        let insts = vec![TraceInst::store(Addr::new(0x40), 8, 1)];
        let mut core = default_core(insts);
        let mut port = NullPort::new();
        for t in 0..50 {
            core.tick(Cycle::new(t), &mut port);
        }
        assert_eq!(port.committed_stores, vec![Addr::new(0x40)]);
    }

    #[test]
    fn rob_full_attributed_when_load_blocks_head() {
        // A load that never completes blocks commit; the ROB fills.
        struct BlackHole;
        impl MemPort for BlackHole {
            fn forward_load(&mut self, _a: Addr, _s: usize) -> Option<(u64, u64)> {
                None
            }
            fn issue_load(&mut self, _a: Addr, _s: usize, _t: u64, _n: Cycle) {}
            fn store_committed(&mut self, _a: Addr, _s: usize, _n: Cycle) {}
            fn fence_drained(&mut self) -> bool {
                true
            }
        }
        let cfg = SimConfig::default();
        let mut insts = vec![TraceInst::load(Addr::new(0), 8)];
        // Alternate int/fp so physical registers (332+332) outlast the
        // 512-entry ROB and the ROB is the first missing resource.
        for i in 0..2000 {
            insts.push(if i % 2 == 0 {
                TraceInst::alu()
            } else {
                TraceInst {
                    op: OpClass::FpAdd,
                    ..TraceInst::alu()
                }
            });
        }
        let mut core = Core::new(CoreId::new(0), &cfg, Box::new(VecTrace::new(insts)));
        let mut port = BlackHole;
        for t in 0..500 {
            core.tick(Cycle::new(t), &mut port);
        }
        assert!(core.stats.stall_rob > 0);
        assert_eq!(core.committed(), 0);
    }

    #[test]
    fn finished_core_reports_no_work_and_charges_idle() {
        let mut core = default_core(vec![TraceInst::alu(); 10]);
        let mut port = NullPort::new();
        let end = run(&mut core, &mut port, 100, true);
        let now = Cycle::new(end + 1);
        assert_eq!(core.next_work_at(now, true), None);
        let before = core.stats.frontend_idle;
        core.charge_idle(41, now, true);
        assert_eq!(core.stats.frontend_idle, before + 41);
        assert_eq!(core.stats.cycles, end + 1 + 41);
    }

    #[test]
    fn busy_core_claims_work_now() {
        let core = default_core(vec![TraceInst::alu(); 10]);
        // Nothing fetched yet: the refill stage alone is pending work.
        assert_eq!(core.next_work(Cycle::ZERO), Some(Cycle::ZERO));
    }

    #[test]
    fn sb_blocked_store_charges_stall_sb() {
        let cfg = SimConfig::builder().sb_entries(8).build();
        let insts: Vec<_> = (0..64)
            .map(|i| TraceInst::store(Addr::new(i * 64), 8, i))
            .collect();
        let mut core = Core::new(CoreId::new(0), &cfg, Box::new(VecTrace::new(insts)));
        let mut port = NullPort::new();
        for t in 0..200 {
            core.tick(Cycle::new(t), &mut port);
        }
        // SB full, nothing drains: idle until the policy frees an entry.
        let now = Cycle::new(200);
        assert_eq!(core.next_work_at(now, true), None);
        let before = core.stats.stall_sb;
        core.charge_idle(17, now, true);
        assert_eq!(core.stats.stall_sb, before + 17);
    }

    /// The accountant partitions cycles under both ticking and bulk idle
    /// charging: every cycle lands in exactly one class.
    #[test]
    fn attribution_partitions_every_cycle() {
        let mut core = default_core(vec![TraceInst::alu(); 500]);
        let mut port = NullPort::new();
        let end = run(&mut core, &mut port, 10_000, true);
        assert_eq!(core.attribution().total(), core.stats.cycles);
        assert!(core.attribution().get(AttrClass::Dispatch) > 0);
        core.charge_idle(13, Cycle::new(end + 1), true);
        assert_eq!(core.attribution().total(), core.stats.cycles);
    }

    /// With tracing on, SB-stall intervals come out as spans; without, the
    /// counters are unchanged (checked end to end by the invariant suite).
    #[test]
    fn stall_spans_are_recorded_when_tracing() {
        let cfg = SimConfig::builder().sb_entries(8).build();
        let insts: Vec<_> = (0..64)
            .map(|i| TraceInst::store(Addr::new(i * 64), 8, i))
            .collect();
        let mut core = Core::new(CoreId::new(0), &cfg, Box::new(VecTrace::new(insts)));
        core.trace_enable(1024);
        let mut port = NullPort::new();
        for t in 0..200 {
            core.tick(Cycle::new(t), &mut port);
        }
        let recs = core.take_trace(Cycle::new(200));
        assert!(
            recs.iter().any(|r| {
                matches!(r.ev, TraceEvent::CommitStall { class: AttrClass::Sb }) && r.dur > 0
            }),
            "expected an SB stall span, got {recs:?}"
        );
    }

    #[test]
    fn stats_export_contains_ipc() {
        let mut core = default_core(vec![TraceInst::alu(); 10]);
        let mut port = NullPort::new();
        run(&mut core, &mut port, 100, true);
        let s = core.export_stats();
        assert!(s.get("ipc") > 0.0);
        assert_eq!(s.get("committed"), 10.0);
    }
}
