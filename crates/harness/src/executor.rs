//! Parallel run execution with memoization.
//!
//! The paper's evaluation is a large sweep of *independent, seeded,
//! deterministic* simulations — hundreds of (workload × policy × SB-size)
//! points, many of which repeat across figures (every figure normalizes
//! to the same baseline runs). [`Executor`] exploits both properties:
//!
//! * **Parallelism** — [`Executor::run_many`] fans the deduplicated spec
//!   list out over a worker pool of scoped `std` threads (`--jobs N`,
//!   default [`std::thread::available_parallelism`]). Results land in
//!   per-spec slots, so output order — and therefore every table and CSV
//!   byte — is independent of scheduling.
//! * **Lane batching** — specs that share a machine configuration and
//!   differ only in seed (one [`RunSpec::lane_key`]) are claimed by a
//!   worker as a unit and executed via [`run_lane`], building the
//!   `SimConfig` and energy model once per lane instead of once per run
//!   (`--no-batch` disables this; results are bit-identical either way).
//! * **Memoization** — each [`RunSpec`] has a stable content key
//!   ([`RunSpec::memo_key`]); results are cached in-process across all
//!   figures of an `all` run, and optionally on disk (under
//!   `<out>/.runcache/`) so a repeated invocation executes zero
//!   simulations.
//!
//! Results are bit-identical to the sequential path: simulations are
//! single-threaded and fully seeded, so the only thing parallelism
//! changes is wall-clock time.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use tus_energy::EnergyBreakdown;
use tus_sim::hash::fx_hash_one;
use tus_sim::StatSet;

use crate::errors::{panic_message, HarnessError};
use crate::runner::{run_lane_mode, try_run_budget, try_run_wall, RunResult, RunSpec};

/// Locks a mutex, recovering the data on poisoning.
///
/// Every value the executor guards (the memo map, result slots) is only
/// ever mutated by complete, non-panicking operations — a panicking
/// simulation job unwinds *outside* these critical sections — so a
/// poisoned lock means "some other job panicked", not "this data is
/// torn". Propagating the poison instead would cascade one bad request
/// into a failure of every subsequent request sharing the executor,
/// which is exactly the availability bug a long-lived daemon cannot
/// have.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Counter snapshot of an [`Executor`] (monotonic over its lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Simulations actually executed.
    pub executed: u64,
    /// Requests served from the in-process memo.
    pub memo_hits: u64,
    /// Keys loaded from the on-disk cache.
    pub disk_hits: u64,
}

impl ExecCounters {
    /// Difference against an earlier snapshot.
    pub fn since(self, earlier: ExecCounters) -> ExecCounters {
        ExecCounters {
            executed: self.executed - earlier.executed,
            memo_hits: self.memo_hits - earlier.memo_hits,
            disk_hits: self.disk_hits - earlier.disk_hits,
        }
    }
}

/// A parallel, memoizing simulation executor.
pub struct Executor {
    jobs: usize,
    batching: bool,
    gang: bool,
    cache_dir: Option<PathBuf>,
    memo: Mutex<HashMap<String, RunResult>>,
    executed: AtomicU64,
    memo_hits: AtomicU64,
    disk_hits: AtomicU64,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("jobs", &self.jobs)
            .field("cache_dir", &self.cache_dir)
            .field("memoized", &lock_unpoisoned(&self.memo).len())
            .finish()
    }
}

impl Executor {
    /// Creates an executor with `jobs` workers and an optional on-disk
    /// result cache directory.
    pub fn new(jobs: usize, cache_dir: Option<PathBuf>) -> Self {
        Executor {
            jobs: jobs.max(1),
            batching: true,
            gang: true,
            cache_dir,
            memo: Mutex::new(HashMap::new()),
            executed: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
        }
    }

    /// Enables or disables lane batching (`--no-batch`); on by default.
    ///
    /// Batching changes scheduling granularity only — results are
    /// bit-identical either way, since every simulation is independently
    /// seeded and lanes share nothing mutable.
    pub fn batching(mut self, on: bool) -> Self {
        self.batching = on;
        self
    }

    /// Enables or disables gang-scheduled lane execution (`--no-gang`);
    /// on by default. With gang on, a lane's seed-varied members run in
    /// one interleaved pass ([`tus::SystemGang`]) instead of back to
    /// back; members are independent machines, so results are
    /// bit-identical either way (the CI gang-equivalence job diffs the
    /// CSV trees to prove it).
    pub fn gang(mut self, on: bool) -> Self {
        self.gang = on;
        self
    }

    /// The machine's available parallelism (the `--jobs` default).
    pub fn default_jobs() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Current counter values.
    pub fn counters(&self) -> ExecCounters {
        ExecCounters {
            executed: self.executed.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
        }
    }

    /// Executes every spec and returns results in spec order.
    ///
    /// Duplicate specs (same [`RunSpec::memo_key`]) are simulated once;
    /// previously seen keys are served from the memo (or the disk cache)
    /// without executing anything.
    ///
    /// # Panics
    ///
    /// Panics if a simulation job panics. Use [`Executor::run_many_checked`]
    /// where the process must survive a bad job (the daemon).
    pub fn run_many(&self, specs: &[RunSpec]) -> Vec<RunResult> {
        self.run_many_checked(specs)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Executor::run_many`]: a panicking simulation job comes
    /// back as [`HarnessError::JobPanicked`] instead of unwinding through
    /// the caller. Jobs that completed before the panic are still
    /// memoized (and disk-cached), and the executor's shared state stays
    /// usable — poisoned locks are recovered, so later batches on the
    /// same executor are unaffected.
    pub fn run_many_checked(&self, specs: &[RunSpec]) -> Result<Vec<RunResult>, HarnessError> {
        // Dedup against the memo and the disk cache.
        let keys: Vec<String> = specs.iter().map(RunSpec::memo_key).collect();
        let mut todo: Vec<RunSpec> = Vec::new();
        {
            let mut memo = lock_unpoisoned(&self.memo);
            let mut scheduled: Vec<&str> = Vec::new();
            for (spec, key) in specs.iter().zip(&keys) {
                if memo.contains_key(key) {
                    self.memo_hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if scheduled.iter().any(|k| k == key) {
                    self.memo_hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if let Some(r) = self.load_cached(key) {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    memo.insert(key.clone(), r);
                    continue;
                }
                scheduled.push(key);
                todo.push(spec.clone());
            }
        }

        // Simulate the remainder on the worker pool. A panicking job
        // leaves its slots `None`; everything that completed is kept.
        let (fresh, panicked) = self.execute(&todo);
        let ran = fresh.iter().filter(|r| r.is_some()).count();
        self.executed.fetch_add(ran as u64, Ordering::Relaxed);
        {
            let mut memo = lock_unpoisoned(&self.memo);
            for (spec, result) in todo.iter().zip(&fresh) {
                let Some(result) = result else { continue };
                let key = spec.memo_key();
                self.store_cached(&key, result);
                memo.insert(key, result.clone());
            }
        }
        if let Some(what) = panicked {
            return Err(HarnessError::JobPanicked { what });
        }

        // Assemble results in input order.
        let memo = lock_unpoisoned(&self.memo);
        keys.iter()
            .map(|k| {
                memo.get(k).cloned().ok_or_else(|| HarnessError::JobPanicked {
                    what: format!("no result for key {k}"),
                })
            })
            .collect()
    }

    /// Executes (or recalls) a single spec under an optional per-request
    /// cycle budget, returning structured errors instead of panicking.
    ///
    /// This is the daemon's request path: an unknown-ly long or
    /// deadlocked run comes back as [`HarnessError::Deadlock`] (carrying
    /// the full [`tus::DeadlockReport`]), a panicking job as
    /// [`HarnessError::JobPanicked`] — either way the executor, its memo
    /// and its disk cache remain fully usable for the next request.
    /// Successful results are memoized exactly like [`Executor::run_many`]
    /// (a budget only decides whether a run *finishes*; it cannot change
    /// a finished run's bytes, so budget is not a memo-key dimension).
    pub fn try_run_one(
        &self,
        spec: &RunSpec,
        budget: Option<u64>,
    ) -> Result<RunResult, HarnessError> {
        self.try_run_one_wall(spec, budget, None)
    }

    /// [`Executor::try_run_one`] additionally bounded by a wall-clock
    /// deadline of `wall_ms` milliseconds (the daemon's `wall_ms=`
    /// request header). Expiry comes back as [`HarnessError::Deadlock`]
    /// carrying a [`tus::DeadlockKind::WallClockExpired`] report; an
    /// expired run is never cached (only whether a run *finishes* can
    /// change, not a finished run's bytes, so wall limits — like cycle
    /// budgets — are not a memo-key dimension).
    pub fn try_run_one_wall(
        &self,
        spec: &RunSpec,
        budget: Option<u64>,
        wall_ms: Option<u64>,
    ) -> Result<RunResult, HarnessError> {
        let key = spec.memo_key();
        {
            let mut memo = lock_unpoisoned(&self.memo);
            if let Some(r) = memo.get(&key) {
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(r.clone());
            }
            if let Some(r) = self.load_cached(&key) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                memo.insert(key.clone(), r.clone());
                return Ok(r);
            }
        }
        match std::panic::catch_unwind(AssertUnwindSafe(|| match wall_ms {
            Some(ms) => try_run_wall(spec, budget, ms),
            None => try_run_budget(spec, budget),
        })) {
            Ok(Ok(r)) => {
                self.executed.fetch_add(1, Ordering::Relaxed);
                self.store_cached(&key, &r);
                lock_unpoisoned(&self.memo).insert(key, r.clone());
                Ok(r)
            }
            Ok(Err(report)) => Err(HarnessError::Deadlock(report)),
            Err(payload) => Err(HarnessError::JobPanicked {
                what: panic_message(&*payload),
            }),
        }
    }

    /// Executes every spec and returns a [`ResultSet`] for keyed lookup.
    pub fn run_set(&self, specs: &[RunSpec]) -> ResultSet {
        let results = self.run_many(specs);
        ResultSet {
            map: specs
                .iter()
                .map(RunSpec::memo_key)
                .zip(results)
                .collect(),
        }
    }

    /// Executes (or recalls) a single spec.
    pub fn run_one(&self, spec: &RunSpec) -> RunResult {
        self.run_many(std::slice::from_ref(spec))
            .pop()
            .expect("one spec, one result")
    }

    /// Partitions `todo` into *lanes*: runs of specs sharing a
    /// [`RunSpec::lane_key`] (config-identical, seed-varied), in
    /// first-seen order. With batching off, every spec is its own lane.
    fn lanes(&self, todo: &[RunSpec]) -> Vec<Vec<usize>> {
        if !self.batching {
            return (0..todo.len()).map(|i| vec![i]).collect();
        }
        let mut by_key: HashMap<String, usize> = HashMap::new();
        let mut lanes: Vec<Vec<usize>> = Vec::new();
        for (i, spec) in todo.iter().enumerate() {
            let slot = *by_key.entry(spec.lane_key()).or_insert_with(|| {
                lanes.push(Vec::new());
                lanes.len() - 1
            });
            lanes[slot].push(i);
        }
        lanes
    }

    /// Runs `todo` (already deduplicated) on scoped worker threads,
    /// returning per-spec result slots plus the first captured panic
    /// message, if any job panicked.
    ///
    /// Work is claimed a lane at a time: a worker that grabs a lane runs
    /// every seed in it via [`run_lane`], amortizing configuration and
    /// energy-model construction across the batch. Results scatter back
    /// into per-spec slots, so output order is independent of both
    /// scheduling and batching.
    ///
    /// A panic inside a lane is caught at the lane boundary: that lane's
    /// slots stay `None`, every other lane (including lanes claimed later
    /// by the same worker) still runs, and no lock is left poisoned.
    fn execute(&self, todo: &[RunSpec]) -> (Vec<Option<RunResult>>, Option<String>) {
        let n = todo.len();
        let lanes = self.lanes(todo);
        let jobs = self.jobs.min(lanes.len());
        let panicked: Mutex<Option<String>> = Mutex::new(None);
        fn record_panic(slot: &Mutex<Option<String>>, payload: Box<dyn std::any::Any + Send>) {
            lock_unpoisoned(slot).get_or_insert_with(|| panic_message(&*payload));
        }
        if jobs <= 1 {
            let mut out: Vec<Option<RunResult>> = (0..n).map(|_| None).collect();
            for lane in &lanes {
                let specs: Vec<RunSpec> = lane.iter().map(|&i| todo[i].clone()).collect();
                match std::panic::catch_unwind(AssertUnwindSafe(|| run_lane_mode(&specs, self.gang))) {
                    Ok(results) => {
                        for (&i, r) in lane.iter().zip(results) {
                            out[i] = Some(r);
                        }
                    }
                    Err(payload) => record_panic(&panicked, payload),
                }
            }
            return (out, panicked.into_inner().unwrap_or_else(PoisonError::into_inner));
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RunResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| loop {
                    let l = next.fetch_add(1, Ordering::Relaxed);
                    let Some(lane) = lanes.get(l) else {
                        break;
                    };
                    let specs: Vec<RunSpec> = lane.iter().map(|&i| todo[i].clone()).collect();
                    match std::panic::catch_unwind(AssertUnwindSafe(|| run_lane_mode(&specs, self.gang))) {
                        Ok(results) => {
                            for (&i, r) in lane.iter().zip(results) {
                                *lock_unpoisoned(&slots[i]) = Some(r);
                            }
                        }
                        Err(payload) => record_panic(&panicked, payload),
                    }
                });
            }
        });
        let out = slots
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect();
        (out, panicked.into_inner().unwrap_or_else(PoisonError::into_inner))
    }

    fn cache_path(&self, key: &str) -> Option<PathBuf> {
        self.cache_dir
            .as_ref()
            .map(|d| d.join(format!("{:016x}.run", fx_hash_one(&key))))
    }

    fn load_cached(&self, key: &str) -> Option<RunResult> {
        let path = self.cache_path(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        decode_result(&text, key)
    }

    fn store_cached(&self, key: &str, result: &RunResult) {
        let Some(path) = self.cache_path(key) else {
            return;
        };
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: cannot create run cache {}: {e}", dir.display());
                return;
            }
        }
        if let Err(e) = std::fs::write(&path, encode_result(result, key)) {
            eprintln!("warning: cannot write run cache {}: {e}", path.display());
        }
    }
}

/// Results of a batch, addressable by spec.
#[derive(Debug, Clone)]
pub struct ResultSet {
    map: HashMap<String, RunResult>,
}

impl ResultSet {
    /// The result for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` was not part of the batch.
    pub fn get(&self, spec: &RunSpec) -> &RunResult {
        let key = spec.memo_key();
        self.map
            .get(&key)
            .unwrap_or_else(|| panic!("spec not in batch: {key}"))
    }
}

fn push_f64(out: &mut String, name: &str, v: f64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "{name}={:016x}", v.to_bits());
}

/// Serializes a result to the cache's text format.
///
/// Floats are stored as the hex of their IEEE-754 bits, so a decoded
/// result is bit-identical to the original — cached and fresh runs
/// produce the same CSV bytes. The final `sum=` line is an FxHash of
/// everything above it: [`decode_result`] rejects any entry whose body
/// no longer matches, so a bit-flipped or truncated `.runcache` file is
/// a cache *miss* (re-simulate and overwrite), never a wrong result, an
/// error, or a panic. (v1 entries had no checksum; they fail the format
/// line and miss too.)
pub fn encode_result(r: &RunResult, key: &str) -> String {
    let mut out = String::new();
    out.push_str("tusrun v2\n");
    out.push_str("key=");
    out.push_str(key);
    out.push('\n');
    push_f64(&mut out, "cycles", r.cycles);
    push_f64(&mut out, "committed", r.committed);
    push_f64(&mut out, "ipc", r.ipc);
    push_f64(&mut out, "sb_stall_frac", r.sb_stall_frac);
    push_f64(&mut out, "edp", r.edp);
    push_f64(&mut out, "energy.total_pj", r.energy.total_pj);
    push_f64(&mut out, "energy.cycles", r.energy.cycles);
    for (name, v) in &r.energy.components {
        push_f64(&mut out, &format!("ecomp.{name}"), *v);
    }
    for (name, v) in r.stats.iter() {
        push_f64(&mut out, &format!("stat.{name}"), v);
    }
    let sum = fx_hash_one(&out);
    use std::fmt::Write as _;
    let _ = writeln!(out, "sum={sum:016x}");
    out
}

/// Parses the cache text format; `None` on any mismatch (treated as a
/// cache miss), including a `key=` line differing from `expect_key`
/// (hash-name collision or stale format) and a `sum=` trailer that does
/// not match the body (bit rot, torn write, truncation).
pub fn decode_result(text: &str, expect_key: &str) -> Option<RunResult> {
    // Integrity first: the last line must be `sum=<fxhash of the rest>`.
    let trimmed = text.strip_suffix('\n')?;
    let (head, last) = trimmed.rsplit_once('\n')?;
    let sum = u64::from_str_radix(last.strip_prefix("sum=")?, 16).ok()?;
    let body = &text[..head.len() + 1];
    if fx_hash_one(&body) != sum {
        return None;
    }
    let mut lines = head.lines();
    if lines.next()? != "tusrun v2" {
        return None;
    }
    if lines.next()?.strip_prefix("key=")? != expect_key {
        return None;
    }
    let mut fields: HashMap<&str, f64> = HashMap::new();
    let mut components = std::collections::BTreeMap::new();
    let mut stats = StatSet::new();
    for line in lines {
        let (name, hex) = line.split_once('=')?;
        let v = f64::from_bits(u64::from_str_radix(hex, 16).ok()?);
        if let Some(comp) = name.strip_prefix("ecomp.") {
            components.insert(comp.to_owned(), v);
        } else if let Some(stat) = name.strip_prefix("stat.") {
            stats.set(stat, v);
        } else {
            fields.insert(name, v);
        }
    }
    Some(RunResult {
        cycles: *fields.get("cycles")?,
        committed: *fields.get("committed")?,
        ipc: *fields.get("ipc")?,
        sb_stall_frac: *fields.get("sb_stall_frac")?,
        edp: *fields.get("edp")?,
        energy: EnergyBreakdown {
            total_pj: *fields.get("energy.total_pj")?,
            cycles: *fields.get("energy.cycles")?,
            components,
        },
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Scale;
    use tus_sim::PolicyKind;
    use tus_workloads::by_name;

    fn quick_spec(name: &str, policy: PolicyKind, sb: usize) -> RunSpec {
        RunSpec {
            warmup: 500,
            insts: 3_000,
            ..RunSpec::new(by_name(name).expect("exists"), policy, sb, Scale::Quick)
        }
    }

    #[test]
    fn duplicate_specs_execute_once() {
        let ex = Executor::new(2, None);
        let spec = quick_spec("502.gcc1-like", PolicyKind::Baseline, 114);
        let results = ex.run_many(&[spec.clone(), spec.clone(), spec.clone()]);
        assert_eq!(results.len(), 3);
        let c = ex.counters();
        assert_eq!(c.executed, 1, "identical specs must simulate once");
        assert_eq!(c.memo_hits, 2);
        assert_eq!(
            encode_result(&results[0], "k"),
            encode_result(&results[1], "k"),
            "memoized results identical"
        );
    }

    /// Lane batching groups seed-varied specs, claims them as a unit,
    /// and produces byte-identical results to the unbatched executor.
    #[test]
    fn lane_batching_matches_unbatched_bit_for_bit() {
        let mut specs = Vec::new();
        for seed in [1, 2, 3] {
            specs.push(RunSpec {
                seed,
                ..quick_spec("502.gcc1-like", PolicyKind::Tus, 114)
            });
        }
        specs.push(quick_spec("557.xz-like", PolicyKind::Baseline, 32));

        let batched = Executor::new(2, None);
        assert_eq!(
            batched.lanes(&specs).len(),
            2,
            "three seeds of one config and one other config = two lanes"
        );
        let unbatched = Executor::new(2, None).batching(false);
        assert_eq!(unbatched.lanes(&specs).len(), specs.len());

        let a = batched.run_many(&specs);
        let b = unbatched.run_many(&specs);
        assert_eq!(batched.counters().executed, specs.len() as u64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(encode_result(x, "k"), encode_result(y, "k"));
        }
    }

    #[test]
    fn memo_persists_across_calls() {
        let ex = Executor::new(1, None);
        let spec = quick_spec("557.xz-like", PolicyKind::Tus, 32);
        let a = ex.run_one(&spec);
        let b = ex.run_one(&spec);
        assert_eq!(ex.counters().executed, 1);
        assert_eq!(ex.counters().memo_hits, 1);
        assert_eq!(encode_result(&a, "k"), encode_result(&b, "k"));
    }

    #[test]
    fn disk_cache_round_trips_bit_exact() {
        let dir = std::env::temp_dir().join(format!("tus-runcache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = quick_spec("505.mcf-like", PolicyKind::Ssb, 64);

        let ex1 = Executor::new(1, Some(dir.clone()));
        let a = ex1.run_one(&spec);
        assert_eq!(ex1.counters().executed, 1);

        // A fresh executor (fresh process stand-in) hits the disk cache.
        let ex2 = Executor::new(1, Some(dir.clone()));
        let b = ex2.run_one(&spec);
        let c = ex2.counters();
        assert_eq!(c.executed, 0, "warm cache must execute zero simulations");
        assert_eq!(c.disk_hits, 1);
        let key = spec.memo_key();
        assert_eq!(encode_result(&a, &key), encode_result(&b, &key));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A result cached under one simulator version must be a disk miss
    /// under a bumped version — stale entries are never served.
    #[test]
    fn bumped_cache_version_misses_disk_cache() {
        let dir = std::env::temp_dir()
            .join(format!("tus-runcache-vbump-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = quick_spec("502.gcc1-like", PolicyKind::Csb, 64);

        let ex = Executor::new(1, Some(dir.clone()));
        let r = ex.run_one(&spec);
        assert!(ex.load_cached(&spec.memo_key()).is_some(), "warm under current version");

        let bumped = spec.memo_key_versioned(crate::runner::CACHE_FORMAT_VERSION + 1);
        assert_ne!(bumped, spec.memo_key());
        assert!(
            ex.load_cached(&bumped).is_none(),
            "a version bump must invalidate every cached run"
        );
        // Even a forged hash collision is rejected by the embedded key.
        assert!(decode_result(&encode_result(&r, &spec.memo_key()), &bumped).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A deliberately panicking job must not take down later jobs: the
    /// panic is caught at the lane boundary, reported as a structured
    /// [`HarnessError::JobPanicked`], and the same executor — same memo
    /// map, same locks — serves subsequent batches normally (no mutex
    /// poisoning cascade).
    #[test]
    fn panicking_job_does_not_poison_later_jobs() {
        let bomb = RunSpec {
            tweak: Some(crate::runner::Tweak {
                name: "panic-injection",
                apply: |_| panic!("injected config panic"),
            }),
            ..quick_spec("502.gcc1-like", PolicyKind::Tus, 114)
        };
        let good = quick_spec("557.xz-like", PolicyKind::Baseline, 32);

        let ex = Executor::new(2, None);
        let err = ex
            .run_many_checked(&[bomb.clone(), good.clone()])
            .expect_err("batch containing the bomb must error");
        match &err {
            HarnessError::JobPanicked { what } => {
                assert!(what.contains("injected config panic"), "{what}")
            }
            other => panic!("expected JobPanicked, got {other:?}"),
        }

        // The good job that shared the batch already ran and was
        // memoized; a follow-up batch is served without re-execution and
        // fresh work still executes.
        let before = ex.counters();
        let results = ex
            .run_many_checked(&[good.clone(), quick_spec("505.mcf-like", PolicyKind::Ssb, 64)])
            .expect("later jobs unaffected by the earlier panic");
        assert_eq!(results.len(), 2);
        let since = ex.counters().since(before);
        assert_eq!(since.memo_hits, 1, "pre-panic result still served from memo");
        assert_eq!(since.executed, 1);

        // The single-spec daemon path reports the same panic structurally.
        let err = ex.try_run_one(&bomb, None).expect_err("bomb via try_run_one");
        assert!(matches!(err, HarnessError::JobPanicked { .. }));
        assert!(ex.try_run_one(&good, None).is_ok());
    }

    /// A panic inside a **gang-scheduled multi-seed lane** is contained
    /// by the same lane-boundary `catch_unwind`: the whole lane reports
    /// [`HarnessError::JobPanicked`] (its members share one gang pass),
    /// and unrelated lanes on the same executor are untouched.
    #[test]
    fn panicking_gang_lane_is_contained_at_the_lane_boundary() {
        let bomb = RunSpec {
            tweak: Some(crate::runner::Tweak {
                name: "panic-injection",
                apply: |_| panic!("injected gang panic"),
            }),
            ..quick_spec("502.gcc1-like", PolicyKind::Tus, 114)
        };
        let bombs = [
            RunSpec { seed: 1, ..bomb.clone() },
            RunSpec { seed: 2, ..bomb.clone() },
        ];
        assert_eq!(bombs[0].lane_key(), bombs[1].lane_key(), "one gang lane");
        let good = [
            RunSpec { seed: 1, ..quick_spec("557.xz-like", PolicyKind::Baseline, 32) },
            RunSpec { seed: 2, ..quick_spec("557.xz-like", PolicyKind::Baseline, 32) },
        ];

        let ex = Executor::new(2, None); // gang on by default
        let all: Vec<RunSpec> = bombs.iter().chain(good.iter()).cloned().collect();
        let err = ex.run_many_checked(&all).expect_err("gang lane with the bomb must error");
        match &err {
            HarnessError::JobPanicked { what } => {
                assert!(what.contains("injected gang panic"), "{what}")
            }
            other => panic!("expected JobPanicked, got {other:?}"),
        }

        // The healthy gang lane still runs to completion on the same
        // executor, bit-identical to its solo members.
        let results = ex.run_many_checked(&good).expect("healthy lane unaffected");
        for (spec, r) in good.iter().zip(&results) {
            let solo = crate::runner::run(spec);
            let key = spec.memo_key();
            assert_eq!(encode_result(r, &key), encode_result(&solo, &key));
        }
    }

    /// A truncated or bit-flipped `.runcache` entry must behave as a
    /// cache miss — the run is re-simulated and the entry overwritten —
    /// never an error, a panic, or (worse) a silently wrong result.
    #[test]
    fn corrupt_cache_entry_is_a_miss_and_heals() {
        let dir = std::env::temp_dir().join(format!("tus-runcache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = quick_spec("502.gcc1-like", PolicyKind::Spb, 64);

        let ex = Executor::new(1, Some(dir.clone()));
        let original = ex.run_one(&spec);
        let path = ex.cache_path(&spec.memo_key()).expect("cache path");
        let pristine = std::fs::read(&path).expect("entry written");

        // Flip one bit in the middle of the entry (lands in a value's
        // hex digits — the kind of corruption only a checksum catches).
        let mut flipped = pristine.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        std::fs::write(&path, &flipped).expect("write corrupted");
        let ex2 = Executor::new(1, Some(dir.clone()));
        let healed = ex2.run_one(&spec);
        let c = ex2.counters();
        assert_eq!(c.disk_hits, 0, "bit-flipped entry must not be served");
        assert_eq!(c.executed, 1, "corrupt entry re-simulates");
        let key = spec.memo_key();
        assert_eq!(encode_result(&healed, &key), encode_result(&original, &key));
        assert_eq!(
            std::fs::read(&path).expect("entry rewritten"),
            pristine,
            "re-simulation overwrites the corrupt entry in place"
        );

        // Truncation (torn write / full disk) is also just a miss.
        std::fs::write(&path, &pristine[..pristine.len() / 2]).expect("truncate");
        let ex3 = Executor::new(1, Some(dir.clone()));
        let recovered = ex3.run_one(&spec);
        assert_eq!(ex3.counters().executed, 1);
        assert_eq!(
            encode_result(&recovered, &key),
            encode_result(&original, &key)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `try_run_one` is the daemon's request path: budget exhaustion is a
    /// structured error, a successful result is memoized so a repeat is
    /// free, and the failed attempt is never cached.
    #[test]
    fn try_run_one_budget_and_memoization() {
        let ex = Executor::new(1, None);
        let spec = quick_spec("502.gcc1-like", PolicyKind::Tus, 114);
        let err = ex
            .try_run_one(&spec, Some(50))
            .expect_err("50 cycles cannot finish");
        assert!(matches!(err, HarnessError::Deadlock(_)));
        assert_eq!(ex.counters().executed, 0, "a failed run is not counted or cached");

        let a = ex.try_run_one(&spec, None).expect("default budget");
        let b = ex.try_run_one(&spec, None).expect("memo hit");
        let c = ex.counters();
        assert_eq!(c.executed, 1);
        assert_eq!(c.memo_hits, 1);
        assert_eq!(encode_result(&a, "k"), encode_result(&b, "k"));
    }

    #[test]
    fn decode_rejects_wrong_key_and_garbage() {
        let spec = quick_spec("502.gcc1-like", PolicyKind::Baseline, 114);
        let ex = Executor::new(1, None);
        let r = ex.run_one(&spec);
        let enc = encode_result(&r, "the-key");
        assert!(decode_result(&enc, "the-key").is_some());
        assert!(decode_result(&enc, "other-key").is_none());
        assert!(decode_result("junk", "the-key").is_none());
        assert!(decode_result("tusrun v1\nkey=the-key\nbadline\n", "the-key").is_none());
    }
}
