//! Trace-driven out-of-order core model.
//!
//! [`Core`] models the processor described in Table I of the paper: an
//! 8-wide-fetch / 6-wide-rename / 12-wide-issue / 8-wide-commit machine
//! with a 512-entry ROB, a 192-entry load queue and a unified store buffer
//! whose size is the paper's central knob (114/64/32 entries).
//!
//! The model is *resource-accurate rather than ISA-accurate*: instructions
//! come from a [`trace::TraceSource`] that provides operation classes,
//! memory addresses and register-dependency distances. What the evaluation
//! measures — store-buffer backpressure, ROB-full stalls on long loads,
//! the race between store drain rate and commit rate — are all resource
//! effects that this model captures cycle by cycle.
//!
//! The store-drain policy is *not* here: the policy layer (the `tus`
//! crate) pops committed stores from [`sb::StoreBuffer`] between core
//! ticks. Loads reach the memory hierarchy through the [`MemPort`] trait
//! implemented by the system assembly.

pub mod core;
pub mod sb;
pub mod trace;

pub use crate::core::{Core, CoreStats, MemPort, StallReason};
pub use sb::{ForwardResult, SbEntry, StoreBuffer};
pub use trace::{OpClass, TraceInst, TraceSource, VecTrace};
