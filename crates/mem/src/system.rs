//! The assembled memory system.
//!
//! [`MemorySystem`] owns one [`PrivateCache`] per core, the coherence
//! backend ([`DirBackend`], selected by `cfg.coherence`), the [`Network`]
//! and [`MainMemory`], and advances them one cycle at a time. The policy
//! layer (the `tus` crate) drives the per-core controllers between ticks
//! and consumes their events.

use tus_sim::sched::earliest;
use tus_sim::trace::TraceRecord;
use tus_sim::{CoherenceKind, CoreId, Cycle, Schedulable, SimConfig, SimRng, StatSet};

use crate::backend::{DirBackend, Directory, TardisDirectory};
use crate::mainmem::MainMemory;
use crate::msgs::{CacheEvent, Msg};
use crate::net::{NetLatency, Network};
use crate::percore::PrivateCache;

/// Memory-side snapshot of one core taken when a run fails to make
/// progress (part of the structured deadlock diagnostics).
#[derive(Debug, Clone, Default)]
pub struct CoreMemSnapshot {
    /// Requests in flight from this core to the directory.
    pub outstanding: usize,
    /// Lines those requests target.
    pub outstanding_lines: Vec<tus_sim::LineAddr>,
    /// External requests parked on this core (pending decision, delayed,
    /// or deferred by the grant-hold window).
    pub parked_externals: usize,
}

/// Memory-side half of a deadlock report: what the coherence fabric was
/// doing when progress stopped. The policy-side half (SB/WOQ/WCB
/// occupancy) is assembled by the full-system layer.
#[derive(Debug, Clone, Default)]
pub struct MemDeadlockSnapshot {
    /// Per-core controller state.
    pub cores: Vec<CoreMemSnapshot>,
    /// Directory transactions still open.
    pub dir_open_transactions: usize,
    /// Interconnect messages still in flight.
    pub net_in_flight: usize,
}

impl MemDeadlockSnapshot {
    /// Whether the memory side was fully quiescent (the hang is then in
    /// the policy/pipeline layer).
    pub fn quiescent(&self) -> bool {
        self.dir_open_transactions == 0
            && self.net_in_flight == 0
            && self
                .cores
                .iter()
                .all(|c| c.outstanding == 0 && c.parked_externals == 0)
    }
}

impl std::fmt::Display for MemDeadlockSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "directory: {} open transaction(s); network: {} message(s) in flight",
            self.dir_open_transactions, self.net_in_flight
        )?;
        for (i, c) in self.cores.iter().enumerate() {
            writeln!(
                f,
                "core{i} mem: {} outstanding request(s) {:?}, {} parked external(s)",
                c.outstanding,
                c.outstanding_lines.iter().map(|l| l.raw()).collect::<Vec<_>>(),
                c.parked_externals
            )?;
        }
        Ok(())
    }
}

/// All memory-side components of the simulated machine.
pub struct MemorySystem {
    /// Per-core private cache controllers.
    pub ctrls: Vec<PrivateCache>,
    /// The coherence home node / shared LLC.
    pub dir: DirBackend,
    /// The interconnect.
    pub net: Network,
    /// Functional backing store.
    pub memory: MainMemory,
}

impl std::fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem")
            .field("cores", &self.ctrls.len())
            .field("dir", &self.dir)
            .finish()
    }
}

impl MemorySystem {
    /// Builds the memory system described by `cfg`, seeding the network
    /// jitter RNG from `rng`.
    pub fn new(cfg: &SimConfig, rng: &mut SimRng) -> Self {
        let ctrls = (0..cfg.cores)
            .map(|i| PrivateCache::new(CoreId::new(i as u16), cfg))
            .collect();
        let dir = match cfg.coherence {
            CoherenceKind::Mesi => DirBackend::Mesi(Directory::new(
                cfg.cores,
                cfg.mem.l3.sets(),
                cfg.mem.l3.ways,
                cfg.mem.dram_latency,
                cfg.mem.dram_max_inflight,
            )),
            CoherenceKind::Tardis => DirBackend::Tardis(TardisDirectory::new(
                cfg.cores,
                cfg.mem.l3.sets(),
                cfg.mem.l3.ways,
                cfg.mem.dram_latency,
                cfg.mem.dram_max_inflight,
            )),
        };
        let net = Network::new(
            cfg.cores,
            NetLatency::from_round_trips(cfg.mem.l2.latency, cfg.mem.l3.latency),
            cfg.chaos_jitter,
            rng.fork(0x6e65_7477_6f72_6b),
        );
        MemorySystem {
            ctrls,
            dir,
            net,
            memory: MainMemory::new(),
        }
    }

    /// Delivers all messages due this cycle and advances DRAM. Call once
    /// per cycle *before* the cores issue new requests.
    pub fn tick(&mut self, now: Cycle) {
        self.dir.tick(&mut self.net, &mut self.memory, now);
        // Directory inbound.
        while let Some((_src, msg)) = self.net.recv(crate::net::Node::Dir, now) {
            self.dir.handle(msg, &mut self.net, &mut self.memory, now);
            self.run_dir_replays(now);
        }
        self.run_dir_replays(now);
        // Core inbound (deferred externals first, then fresh messages).
        for i in 0..self.ctrls.len() {
            self.ctrls[i].tick(now, &mut self.net);
            let node = crate::net::Node::Core(CoreId::new(i as u16));
            while let Some((_src, msg)) = self.net.recv(node, now) {
                self.ctrls[i].handle_msg(msg, now, &mut self.net);
            }
        }
    }

    fn run_dir_replays(&mut self, now: Cycle) {
        // Popping one at a time preserves the drain order of the old
        // batch-take loop (new replays enqueue at the back) without
        // materializing a Vec per batch.
        while let Some(r) = self.dir.pop_replay() {
            self.dir.handle(
                Msg::Req {
                    core: r.core,
                    line: r.line,
                    kind: r.kind,
                    prefetch: r.prefetch,
                    pts: r.pts,
                },
                &mut self.net,
                &mut self.memory,
                now,
            );
        }
    }

    /// Drains the events of one controller.
    pub fn take_events(&mut self, core: CoreId) -> Vec<CacheEvent> {
        self.ctrls[core.index()].take_events()
    }

    /// Appends one controller's pending events to `out` — the
    /// allocation-free drain for per-cycle loops.
    pub fn drain_events_into(&mut self, core: CoreId, out: &mut Vec<CacheEvent>) {
        self.ctrls[core.index()].drain_events_into(out);
    }

    /// Whether the entire memory system is quiescent (no in-flight
    /// messages, transactions or outstanding requests).
    pub fn quiesced(&self) -> bool {
        self.net.idle() && self.dir.idle() && self.ctrls.iter().all(|c| c.quiesced())
    }

    /// Snapshots the memory-side state for a deadlock report: what each
    /// controller, the directory and the interconnect still had in
    /// flight when forward progress stopped.
    pub fn deadlock_snapshot(&self) -> MemDeadlockSnapshot {
        MemDeadlockSnapshot {
            cores: self
                .ctrls
                .iter()
                .map(|c| CoreMemSnapshot {
                    outstanding: c.outstanding_requests(),
                    outstanding_lines: c.outstanding_lines(),
                    parked_externals: c.parked_externals(),
                })
                .collect(),
            dir_open_transactions: self.dir.open_transactions(),
            net_in_flight: self.net.in_flight(),
        }
    }

    /// Reads the *coherent* value of `size` bytes at `addr`: the dirty
    /// copy of the owning core if one exists, else memory. Intended for
    /// post-run final-state extraction (the system should be quiesced).
    pub fn read_coherent(&self, addr: tus_sim::Addr, size: usize) -> u64 {
        let line = addr.line();
        for c in &self.ctrls {
            if let Some((state, data)) = c.peek_line(line) {
                if state.can_write() {
                    return crate::line::read_value(&data, addr.line_offset(), size);
                }
            }
        }
        self.memory.read_addr(addr, size)
    }

    /// Arms structured tracing on every memory-side component (per-core
    /// controllers, directory, network), each with a ring of `cap`
    /// records.
    pub fn enable_trace(&mut self, cap: usize) {
        for c in &mut self.ctrls {
            c.trace_enable(cap);
        }
        self.dir.trace_enable(cap);
        self.net.trace_enable(cap);
    }

    /// Drains all memory-side trace buffers as named tracks:
    /// `mem.core<i>` per controller, plus `dir` and `net`.
    pub fn take_traces(&mut self) -> Vec<(String, Vec<TraceRecord>)> {
        let mut out = Vec::new();
        for (i, c) in self.ctrls.iter_mut().enumerate() {
            out.push((format!("mem.core{i}"), c.take_trace()));
        }
        out.push(("dir".to_owned(), self.dir.take_trace()));
        out.push(("net".to_owned(), self.net.take_trace()));
        out
    }

    /// Earliest cycle at which [`MemorySystem::tick`] itself would do
    /// anything: an in-flight network delivery (to the directory *or* a
    /// core controller — both are received inside `tick`), a DRAM
    /// completion, or a controller's deferred external request coming of
    /// age. Unlike the [`Schedulable`] impl this *excludes* pending
    /// controller events: those are consumed by the per-core slice, not by
    /// `tick`, so the event-driven kernel accounts them to the core unit.
    pub fn fabric_next_work(&self, now: Cycle) -> Option<Cycle> {
        let mut next = earliest(self.net.next_work(now), self.dir.next_work(now));
        for c in &self.ctrls {
            next = earliest(next, c.next_deferred_fwd());
            if next.is_some_and(|c| c <= now) {
                break;
            }
        }
        next
    }

    /// Whether [`MemorySystem::tick`] at cycle `now` will mutate core
    /// `i`'s controller: a network message is due for delivery to it, or
    /// one of its deferred external requests comes of age. The
    /// event-driven kernel uses this to charge the core's pending idle
    /// span against its *pre-delivery* state and wake it for this cycle.
    pub fn core_touched_by_fabric(&self, i: usize, now: Cycle) -> bool {
        let node = crate::net::Node::Core(CoreId::new(i as u16));
        self.net.next_due_for(node).is_some_and(|d| d <= now)
            || self.ctrls[i].next_deferred_fwd().is_some_and(|d| d <= now)
    }

    /// Aggregated statistics (`coreN.*`, `dir.*`, `net.*`).
    pub fn export_stats(&self) -> StatSet {
        let mut s = StatSet::new();
        for c in &self.ctrls {
            s.absorb(&format!("core{}", c.core().raw()), &c.export_stats());
        }
        s.absorb("dir", &self.dir.export_stats());
        s.set("net.msgs", self.net.sent_count() as f64);
        s
    }
}

impl Schedulable for MemorySystem {
    /// Earliest cycle at which ticking the memory system could change
    /// state: pending controller events, deferred external requests, DRAM
    /// completions, or in-flight network messages. Directory replays never
    /// persist across ticks (they are drained within the producing tick),
    /// and the network's jitter RNG is only consulted in `send`, so an
    /// idle stretch is provably a no-op until the reported cycle.
    fn next_work(&self, now: Cycle) -> Option<Cycle> {
        let mut next = earliest(self.net.next_work(now), self.dir.next_work(now));
        for c in &self.ctrls {
            next = earliest(next, c.next_work(now));
            if next.is_some_and(|c| c <= now) {
                break;
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msgs::CacheEvent;
    use tus_sim::{Addr, SimConfig};

    fn small_cfg(cores: usize) -> SimConfig {
        SimConfig::builder()
            .cores(cores)
            .scale_caches_down(64)
            .build()
    }

    /// Runs ticks until `f` yields a value or the cycle budget is hit.
    /// Budget exhaustion is an `Err` carrying the memory-side snapshot,
    /// never a process abort — callers decide how to surface it.
    fn try_run_until<T>(
        sys: &mut MemorySystem,
        start: u64,
        budget: u64,
        mut f: impl FnMut(&mut MemorySystem, Cycle) -> Option<T>,
    ) -> Result<(Cycle, T), MemDeadlockSnapshot> {
        for t in start..start + budget {
            let now = Cycle::new(t);
            sys.tick(now);
            if let Some(v) = f(sys, now) {
                return Ok((now, v));
            }
        }
        Err(sys.deadlock_snapshot())
    }

    fn run_until<T>(
        sys: &mut MemorySystem,
        start: u64,
        budget: u64,
        f: impl FnMut(&mut MemorySystem, Cycle) -> Option<T>,
    ) -> (Cycle, T) {
        match try_run_until(sys, start, budget, f) {
            Ok(v) => v,
            Err(snap) => {
                unreachable!("condition not reached within {budget} cycles:\n{snap}")
            }
        }
    }

    #[test]
    fn load_miss_completes_with_dram_latency() {
        let cfg = small_cfg(1);
        let mut rng = SimRng::seed(1);
        let mut sys = MemorySystem::new(&cfg, &mut rng);
        let c0 = CoreId::new(0);
        {
            let (ctrl, net) = (&mut sys.ctrls[0], &mut sys.net);
            ctrl.load(Addr::new(0x1000), 8, 7, Cycle::ZERO, net);
        }
        let (_, (at, value)) = run_until(&mut sys, 0, 2000, |sys, _| {
            sys.take_events(c0).into_iter().find_map(|e| match e {
                CacheEvent::LoadDone { token: 7, at, value } => Some((at, value)),
                _ => None,
            })
        });
        assert_eq!(value, 0);
        // Two network hops + DRAM latency at minimum.
        assert!(at.raw() >= cfg.mem.dram_latency + 2 * sys.net.hop_latency());
        // Second load to the same line now hits in L1D.
        let t = at.raw() + 1;
        {
            let (ctrl, net) = (&mut sys.ctrls[0], &mut sys.net);
            ctrl.load(Addr::new(0x1008), 8, 8, Cycle::new(t), net);
        }
        let (_, at2) = run_until(&mut sys, t, 50, |sys, _| {
            sys.take_events(c0).into_iter().find_map(|e| match e {
                CacheEvent::LoadDone { token: 8, at, .. } => Some(at),
                _ => None,
            })
        });
        assert_eq!(at2.raw(), t + cfg.mem.l1d.latency);
    }

    #[test]
    fn store_write_read_roundtrip_through_two_cores() {
        let cfg = small_cfg(2);
        let mut rng = SimRng::seed(2);
        let mut sys = MemorySystem::new(&cfg, &mut rng);
        let addr = Addr::new(0x4000);
        // Core 0 acquires write permission and stores 0xdead.
        run_until(&mut sys, 0, 4000, |sys, now| {
            let (ctrl, net) = (&mut sys.ctrls[0], &mut sys.net);
            match ctrl.try_visible_store_write(addr, 8, 0xdead, now, net) {
                crate::percore::StoreWriteOutcome::Done => Some(()),
                crate::percore::StoreWriteOutcome::NotYet => None,
            }
        });
        // Core 1 loads it back: must observe 0xdead via coherence.
        {
            let now = Cycle::new(5000);
            sys.tick(now);
            let (ctrl, net) = (&mut sys.ctrls[1], &mut sys.net);
            ctrl.load(addr, 8, 99, now, net);
        }
        let (_, v) = run_until(&mut sys, 5001, 4000, |sys, _| {
            sys.take_events(CoreId::new(1)).into_iter().find_map(|e| match e {
                CacheEvent::LoadDone { token: 99, value, .. } => Some(value),
                _ => None,
            })
        });
        assert_eq!(v, 0xdead);
        // Core 0 must have been downgraded or invalidated.
        let st = sys.ctrls[0].line_state(addr.line());
        assert!(
            st.is_none() || !st.expect("present").0.can_write(),
            "core 0 still writable after remote read: {st:?}"
        );
    }

    #[test]
    fn write_permission_ping_pong() {
        let cfg = small_cfg(2);
        let mut rng = SimRng::seed(3);
        let mut sys = MemorySystem::new(&cfg, &mut rng);
        let addr = Addr::new(0x8000);
        for round in 0u64..6 {
            let core = (round % 2) as usize;
            let val = 0x100 + round;
            let start = round * 5000;
            run_until(&mut sys, start, 5000, |sys, now| {
                let (ctrl, net) = (&mut sys.ctrls[core], &mut sys.net);
                match ctrl.try_visible_store_write(addr, 8, val, now, net) {
                    crate::percore::StoreWriteOutcome::Done => Some(()),
                    crate::percore::StoreWriteOutcome::NotYet => None,
                }
            });
        }
        // Final value visible to a fresh read from core 0.
        {
            let now = Cycle::new(40_000);
            sys.tick(now);
            let (ctrl, net) = (&mut sys.ctrls[0], &mut sys.net);
            ctrl.load(addr, 8, 1, now, net);
        }
        let (_, v) = run_until(&mut sys, 40_001, 4000, |sys, _| {
            sys.take_events(CoreId::new(0)).into_iter().find_map(|e| match e {
                CacheEvent::LoadDone { token: 1, value, .. } => Some(value),
                _ => None,
            })
        });
        assert_eq!(v, 0x105);
    }

    #[test]
    fn quiesces_after_traffic() {
        let cfg = small_cfg(2);
        let mut rng = SimRng::seed(4);
        let mut sys = MemorySystem::new(&cfg, &mut rng);
        for i in 0..20u64 {
            let now = Cycle::new(i);
            sys.tick(now);
            let (ctrl, net) = (&mut sys.ctrls[(i % 2) as usize], &mut sys.net);
            ctrl.load(Addr::new(0x100 * i), 4, i, now, net);
        }
        let quiesced = try_run_until(&mut sys, 20, 20_000, |sys, _| {
            sys.quiesced().then_some(())
        });
        assert!(
            quiesced.is_ok(),
            "memory system failed to quiesce:\n{}",
            quiesced.expect_err("checked")
        );
    }

    #[test]
    fn stats_export_has_core_prefixes() {
        let cfg = small_cfg(2);
        let mut rng = SimRng::seed(5);
        let mut sys = MemorySystem::new(&cfg, &mut rng);
        {
            let (ctrl, net) = (&mut sys.ctrls[0], &mut sys.net);
            ctrl.load(Addr::new(0), 1, 0, Cycle::ZERO, net);
        }
        let s = sys.export_stats();
        assert_eq!(s.get("core0.loads"), 1.0);
        assert!(s.contains("core1.loads"));
        assert!(s.contains("dir.gets"));
    }
}
