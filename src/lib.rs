//! Umbrella crate for the TUS reproduction.
//!
//! Re-exports every workspace crate under one roof so examples, tests and
//! downstream users can depend on a single package:
//!
//! * [`sim`] (`tus-sim`) — simulation kernel and Table I configuration.
//! * [`mem`] (`tus-mem`) — caches, MESI directory coherence, prefetchers.
//! * [`cpu`] (`tus-cpu`) — the out-of-order core model.
//! * [`core`] (`tus`) — the TUS mechanism and the drain-policy zoo.
//! * [`tso`] (`tus-tso`) — x86-TSO reference model and litmus harness.
//! * [`workloads`] (`tus-workloads`) — archetype workload generators.
//! * [`energy`] (`tus-energy`) — energy/area/EDP models.
//! * [`harness`] (`tus-harness`) — figure/table experiment runners.

pub use tus as core;
pub use tus_cpu as cpu;
pub use tus_energy as energy;
pub use tus_harness as harness;
pub use tus_mem as mem;
pub use tus_sim as sim;
pub use tus_tso as tso;
pub use tus_workloads as workloads;
