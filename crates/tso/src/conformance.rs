//! Conformance checking: simulator ⊑ x86-TSO.
//!
//! A litmus program is compiled onto the full simulator — one core per
//! thread, each location on its own cache line — and run many times with
//! varying coherence-message jitter and instruction padding to explore
//! timings. Every observed outcome must be in the reference model's
//! allowed set; a single outcome outside it is a TSO violation in the
//! store-handling machinery under test.

use std::collections::BTreeSet;

use tus::{DeadlockReport, System};
use tus_cpu::{TraceInst, VecTrace};
use tus_sim::{Addr, CoherenceKind, KernelKind, PolicyKind, SimConfig, SimRng};

use crate::prog::{LOp, Outcome, Program};
use crate::refmodel::tso_outcomes;

/// Base address for litmus locations.
const LITMUS_BASE: u64 = 0x100_000;

/// Cycle budget per litmus run.
const RUN_BUDGET: u64 = 2_000_000;

/// Address of a litmus location (one cache line per location).
pub fn loc_addr(loc: usize) -> Addr {
    Addr::new(LITMUS_BASE + (loc as u64) * 64)
}

/// The default location→address map: one cache line per location.
pub fn default_addrs(prog: &Program) -> Vec<Addr> {
    (0..prog.locations()).map(loc_addr).collect()
}

/// The result of one simulator run of a litmus program.
///
/// Only [`RunVerdict::Outcome`] carries register/memory values that may
/// be compared against the reference model; the other verdicts mean the
/// run produced *no* trustworthy outcome and must be surfaced, not
/// silently treated as an observation.
#[derive(Debug)]
pub enum RunVerdict {
    /// The run completed; all registers and final memory collected.
    Outcome(Outcome),
    /// The run exhausted its cycle budget or tripped the progress
    /// watchdog; the report says what was stuck where.
    Timeout(Box<DeadlockReport>),
    /// The run "completed" but a thread collected a different number of
    /// load values than the program contains — the outcome would be
    /// fabricated, so it is rejected (defense against harness bugs).
    Truncated {
        /// Thread whose register file is inconsistent.
        thread: usize,
        /// Loads the program performs on that thread.
        expected: usize,
        /// Values actually collected.
        got: usize,
    },
}

impl RunVerdict {
    /// The completed outcome, if any.
    pub fn outcome(self) -> Option<Outcome> {
        match self {
            RunVerdict::Outcome(o) => Some(o),
            _ => None,
        }
    }
}

/// Compiles one thread to a trace, inserting `0..=max_pad` random ALU
/// instructions between operations to perturb pipeline timing.
fn compile_thread(ops: &[LOp], addrs: &[Addr], rng: &mut SimRng, max_pad: u64) -> VecTrace {
    let mut insts = Vec::new();
    for op in ops {
        if max_pad > 0 {
            for _ in 0..rng.range(0, max_pad + 1) {
                insts.push(TraceInst::alu());
            }
        }
        match *op {
            LOp::Store { loc, val } => insts.push(TraceInst::store(addrs[loc.0], 8, val)),
            LOp::Load { loc } => insts.push(TraceInst::load(addrs[loc.0], 8)),
            LOp::Fence => insts.push(TraceInst::fence()),
        }
    }
    VecTrace::new(insts)
}

/// Runs `prog` once with locations mapped through `addrs` (one 8-byte
/// slot per location; distinct locations may share a cache line or
/// collide in the lex order — that is the point of custom maps).
///
/// # Panics
///
/// Panics if `addrs` is shorter than the program's location count.
pub fn try_run_once_at(
    prog: &Program,
    addrs: &[Addr],
    policy: PolicyKind,
    seed: u64,
) -> RunVerdict {
    try_run_once_at_kernel(prog, addrs, policy, seed, KernelKind::default())
}

/// [`try_run_once_at`] under an explicit simulation kernel. Verdicts and
/// outcomes must not depend on the kernel; the fuzzer exploits this by
/// sweeping the same corpus through both kernels.
pub fn try_run_once_at_kernel(
    prog: &Program,
    addrs: &[Addr],
    policy: PolicyKind,
    seed: u64,
    kernel: KernelKind,
) -> RunVerdict {
    try_run_once_matrix(prog, addrs, policy, seed, kernel, CoherenceKind::default())
}

/// [`try_run_once_at_kernel`] under an explicit coherence backend — the
/// full point in the policy × kernel × backend conformance matrix.
/// TSO-allowed outcome sets must not depend on the backend either: a
/// Tardis lease is a *visibility* mechanism, not a memory-model change.
pub fn try_run_once_matrix(
    prog: &Program,
    addrs: &[Addr],
    policy: PolicyKind,
    seed: u64,
    kernel: KernelKind,
    coherence: CoherenceKind,
) -> RunVerdict {
    assert!(
        addrs.len() >= prog.locations(),
        "address map covers every location"
    );
    let mut rng = SimRng::seed(seed);
    let cfg = SimConfig::builder()
        .cores(prog.threads.len())
        .policy(policy)
        .sb_entries(8)
        .chaos_jitter(1 + (seed % 24))
        .scale_caches_down(64)
        .kernel(kernel)
        .coherence(coherence)
        .build();
    let max_pad = seed % 5;
    let traces: Vec<Box<dyn tus_cpu::TraceSource>> = prog
        .threads
        .iter()
        .map(|t| {
            Box::new(compile_thread(&t.ops, addrs, &mut rng, max_pad))
                as Box<dyn tus_cpu::TraceSource>
        })
        .collect();
    let mut sys = System::new(&cfg, traces, seed);
    for i in 0..prog.threads.len() {
        sys.core_mut(i).record_loads(true);
    }
    if let Err(report) = sys.try_run_to_completion(RUN_BUDGET) {
        return RunVerdict::Timeout(report);
    }
    let regs: Vec<Vec<u64>> = (0..prog.threads.len())
        .map(|i| sys.core(i).loaded_values().to_vec())
        .collect();
    for (i, (r, t)) in regs.iter().zip(&prog.threads).enumerate() {
        if r.len() != t.loads() {
            return RunVerdict::Truncated {
                thread: i,
                expected: t.loads(),
                got: r.len(),
            };
        }
    }
    let mem = (0..prog.locations())
        .map(|l| sys.mem().read_coherent(addrs[l], 8))
        .collect();
    RunVerdict::Outcome(Outcome { regs, mem })
}

/// Runs `prog` once with the default one-line-per-location map.
pub fn try_run_once(prog: &Program, policy: PolicyKind, seed: u64) -> RunVerdict {
    try_run_once_at(prog, &default_addrs(prog), policy, seed)
}

/// Runs `prog` once on the simulator and extracts its outcome.
///
/// # Panics
///
/// Panics on timeout or truncated register collection — use
/// [`try_run_once`] where a hang must be recorded instead of aborting.
pub fn run_once(prog: &Program, policy: PolicyKind, seed: u64) -> Outcome {
    match try_run_once(prog, policy, seed) {
        RunVerdict::Outcome(o) => o,
        RunVerdict::Timeout(r) => panic!("litmus run timed out:\n{r}"),
        RunVerdict::Truncated {
            thread,
            expected,
            got,
        } => panic!("thread {thread} collected {got}/{expected} load values"),
    }
}

/// Runs `prog` across `seeds` timing variations, collecting the distinct
/// outcomes the simulator produces.
pub fn observe_outcomes(prog: &Program, policy: PolicyKind, seeds: u64) -> BTreeSet<Outcome> {
    (0..seeds).map(|s| run_once(prog, policy, s)).collect()
}

/// The verdict of a conformance run.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Outcomes the simulator produced.
    pub observed: BTreeSet<Outcome>,
    /// Outcomes x86-TSO allows.
    pub allowed: BTreeSet<Outcome>,
    /// Observed outcomes outside the allowed set (must be empty).
    pub violations: Vec<Outcome>,
    /// Seeds whose runs timed out or tripped the watchdog, with the
    /// deadlock diagnostics (must be empty).
    pub timeouts: Vec<(u64, Box<DeadlockReport>)>,
    /// Seeds whose runs collected an inconsistent register count
    /// (must be empty).
    pub truncated_seeds: Vec<u64>,
}

impl ConformanceReport {
    /// Whether every run completed and every observed outcome is
    /// TSO-allowed. Timeouts and truncated runs are non-conforming: they
    /// are not evidence of correctness, and under a fuzzer they are
    /// counterexamples in their own right.
    pub fn conforms(&self) -> bool {
        self.violations.is_empty() && self.timeouts.is_empty() && self.truncated_seeds.is_empty()
    }

    /// Fraction of the allowed set that was actually observed (coverage;
    /// informational — narrow coverage is not a failure).
    pub fn coverage(&self) -> f64 {
        if self.allowed.is_empty() {
            return 1.0;
        }
        self.observed
            .iter()
            .filter(|o| self.allowed.contains(*o))
            .count() as f64
            / self.allowed.len() as f64
    }
}

/// Checks that `prog` on the simulator under `policy` only produces
/// TSO-allowed outcomes across `seeds` timing variations.
pub fn check_conformance(prog: &Program, policy: PolicyKind, seeds: u64) -> ConformanceReport {
    check_conformance_at(prog, &default_addrs(prog), policy, seeds)
}

/// [`check_conformance`] with a custom location→address map. The
/// reference set depends only on the program (addresses change timing
/// and lex-order interactions, never TSO semantics), so the same
/// axiomatic set applies to every map.
pub fn check_conformance_at(
    prog: &Program,
    addrs: &[Addr],
    policy: PolicyKind,
    seeds: u64,
) -> ConformanceReport {
    check_conformance_at_kernel(prog, addrs, policy, seeds, KernelKind::default())
}

/// [`check_conformance_at`] under an explicit simulation kernel.
pub fn check_conformance_at_kernel(
    prog: &Program,
    addrs: &[Addr],
    policy: PolicyKind,
    seeds: u64,
    kernel: KernelKind,
) -> ConformanceReport {
    check_conformance_matrix(prog, addrs, policy, seeds, kernel, CoherenceKind::default())
}

/// [`check_conformance_at_kernel`] under an explicit coherence backend.
pub fn check_conformance_matrix(
    prog: &Program,
    addrs: &[Addr],
    policy: PolicyKind,
    seeds: u64,
    kernel: KernelKind,
    coherence: CoherenceKind,
) -> ConformanceReport {
    let allowed = tso_outcomes(prog);
    let mut observed = BTreeSet::new();
    let mut timeouts = Vec::new();
    let mut truncated_seeds = Vec::new();
    for seed in 0..seeds {
        match try_run_once_matrix(prog, addrs, policy, seed, kernel, coherence) {
            RunVerdict::Outcome(o) => {
                observed.insert(o);
            }
            RunVerdict::Timeout(r) => timeouts.push((seed, r)),
            RunVerdict::Truncated { .. } => truncated_seeds.push(seed),
        }
    }
    let violations = observed
        .iter()
        .filter(|o| !allowed.contains(*o))
        .cloned()
        .collect();
    ConformanceReport {
        observed,
        allowed,
        violations,
        timeouts,
        truncated_seeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus::all_litmus_tests;
    use crate::prog::dsl::*;

    /// Quick smoke conformance for TUS on the two most famous tests (the
    /// full corpus × policies sweep lives in the integration tests).
    #[test]
    fn tus_conforms_on_sb_and_mp() {
        for t in all_litmus_tests()
            .into_iter()
            .filter(|t| t.name == "SB" || t.name == "MP")
        {
            let r = check_conformance(&t.program, PolicyKind::Tus, 12);
            assert!(
                r.conforms(),
                "{}: violations {:?}",
                t.name,
                r.violations
            );
        }
    }

    /// Same-cycle single-thread sanity: outcome equals the sequential
    /// semantics.
    #[test]
    fn single_thread_outcome_is_sequential() {
        let p = crate::prog::Program::new(vec![thread(vec![
            st(0, 5),
            ld(0),
            st(1, 6),
            ld(1),
            ld(0),
        ])]);
        let o = run_once(&p, PolicyKind::Tus, 3);
        assert_eq!(o.regs, vec![vec![5, 6, 5]]);
        assert_eq!(o.mem, vec![5, 6]);
    }

    /// Both kernels observe the *identical* outcome set on litmus tests:
    /// the skip kernel may not suppress or invent timings.
    #[test]
    fn kernels_observe_identical_outcome_sets() {
        for t in all_litmus_tests()
            .into_iter()
            .filter(|t| t.name == "SB" || t.name == "MP")
        {
            for policy in [PolicyKind::Baseline, PolicyKind::Tus] {
                let addrs = default_addrs(&t.program);
                let lock = check_conformance_at_kernel(
                    &t.program, &addrs, policy, 8, KernelKind::Lockstep,
                );
                let skip =
                    check_conformance_at_kernel(&t.program, &addrs, policy, 8, KernelKind::Skip);
                assert!(lock.conforms() && skip.conforms(), "{} non-conforming", t.name);
                assert_eq!(
                    lock.observed, skip.observed,
                    "{} ({policy:?}): kernels observed different outcome sets",
                    t.name
                );
            }
        }
    }

    /// The Tardis backend conforms on the two most famous litmus shapes
    /// under both the baseline and TUS drain policies — leases and
    /// self-downgrades must never manufacture a non-TSO outcome.
    #[test]
    fn tardis_backend_conforms_on_sb_and_mp() {
        for t in all_litmus_tests()
            .into_iter()
            .filter(|t| t.name == "SB" || t.name == "MP")
        {
            for policy in [PolicyKind::Baseline, PolicyKind::Tus] {
                let addrs = default_addrs(&t.program);
                let r = check_conformance_matrix(
                    &t.program,
                    &addrs,
                    policy,
                    10,
                    KernelKind::default(),
                    CoherenceKind::Tardis,
                );
                assert!(
                    r.conforms(),
                    "{} ({policy:?}) under tardis: violations {:?}, timeouts {}",
                    t.name,
                    r.violations,
                    r.timeouts.len()
                );
            }
        }
    }

    /// The coverage metric is well-formed.
    #[test]
    fn coverage_between_zero_and_one() {
        let t = &all_litmus_tests()[0];
        let r = check_conformance(&t.program, PolicyKind::Baseline, 6);
        assert!(r.conforms());
        let c = r.coverage();
        assert!((0.0..=1.0).contains(&c), "coverage {c}");
    }
}
