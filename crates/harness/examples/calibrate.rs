//! Calibration helper: per-workload baseline stall%, IPC and TUS speedup.
use tus_harness::{run, RunSpec, Scale};
use tus_sim::PolicyKind;
use tus_workloads::sb_bound_single;

fn main() {
    println!("{:22} {:>8} {:>9} {:>9} {:>9} {:>9}", "workload", "baseIPC", "stall%", "TUSspd%", "SSBspd%", "CSBspd%");
    for w in sb_bound_single() {
        let r = |p| {
            let spec = RunSpec { warmup: 10_000, insts: 80_000, ..RunSpec::new(w.clone(), p, 114, Scale::Quick) };
            run(&spec)
        };
        let b = r(PolicyKind::Baseline);
        let t = r(PolicyKind::Tus);
        let s = r(PolicyKind::Ssb);
        let c = r(PolicyKind::Csb);
        println!("{:22} {:>8.3} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            w.name, b.ipc, b.sb_stall_frac*100.0, (t.ipc/b.ipc-1.0)*100.0, (s.ipc/b.ipc-1.0)*100.0, (c.ipc/b.ipc-1.0)*100.0);
    }
}
