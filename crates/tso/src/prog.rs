//! Litmus-program representation.
//!
//! A [`Program`] is a set of threads, each a straight-line sequence of
//! stores, loads and fences over a small set of shared locations. The
//! observable [`Outcome`] of a run is the sequence of values each
//! thread's loads returned (in program order) plus the final memory
//! value of every location.

use std::fmt;

/// A shared memory location (mapped to its own cache line by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(pub usize);

/// One litmus operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LOp {
    /// Store `val` to `loc`.
    Store {
        /// Target location.
        loc: Loc,
        /// Value written (should be unique within the program for
        /// unambiguous outcomes).
        val: u64,
    },
    /// Load from `loc`; the observed value is appended to the thread's
    /// observation list.
    Load {
        /// Source location.
        loc: Loc,
    },
    /// Full memory fence (`mfence`).
    Fence,
}

/// One thread of a litmus program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Thread {
    /// The operations in program order.
    pub ops: Vec<LOp>,
}

impl Thread {
    /// Builds a thread from operations.
    pub fn new(ops: Vec<LOp>) -> Self {
        Thread { ops }
    }

    /// Number of loads (observations) in the thread.
    pub fn loads(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, LOp::Load { .. })).count()
    }
}

/// A complete litmus program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The threads.
    pub threads: Vec<Thread>,
}

impl Program {
    /// Builds a program from threads.
    pub fn new(threads: Vec<Thread>) -> Self {
        Program { threads }
    }

    /// Number of distinct locations used.
    pub fn locations(&self) -> usize {
        self.threads
            .iter()
            .flat_map(|t| t.ops.iter())
            .filter_map(|o| match o {
                LOp::Store { loc, .. } | LOp::Load { loc } => Some(loc.0),
                LOp::Fence => None,
            })
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Total operation count.
    pub fn ops(&self) -> usize {
        self.threads.iter().map(|t| t.ops.len()).sum()
    }
}

/// The observable result of one execution.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Outcome {
    /// Per thread, the values its loads observed, in program order.
    pub regs: Vec<Vec<u64>>,
    /// Final value of each location.
    pub mem: Vec<u64>,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regs{:?} mem{:?}", self.regs, self.mem)
    }
}

/// Shorthand constructors used by the litmus corpus and tests.
pub mod dsl {
    use super::*;

    /// `st(x, v)` — store.
    pub fn st(loc: usize, val: u64) -> LOp {
        LOp::Store { loc: Loc(loc), val }
    }

    /// `ld(x)` — load.
    pub fn ld(loc: usize) -> LOp {
        LOp::Load { loc: Loc(loc) }
    }

    /// `mfence()`.
    pub fn mfence() -> LOp {
        LOp::Fence
    }

    /// A thread.
    pub fn thread(ops: Vec<LOp>) -> Thread {
        Thread::new(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::dsl::*;
    use super::*;

    #[test]
    fn locations_counts_max_index() {
        let p = Program::new(vec![
            thread(vec![st(0, 1), ld(2)]),
            thread(vec![mfence(), ld(1)]),
        ]);
        assert_eq!(p.locations(), 3);
        assert_eq!(p.ops(), 4);
        assert_eq!(p.threads[0].loads(), 1);
    }

    #[test]
    fn outcome_ordering_is_total() {
        let a = Outcome {
            regs: vec![vec![0]],
            mem: vec![1],
        };
        let b = Outcome {
            regs: vec![vec![1]],
            mem: vec![1],
        };
        assert!(a < b);
        let mut set = std::collections::BTreeSet::new();
        set.insert(a.clone());
        set.insert(b);
        set.insert(a);
        assert_eq!(set.len(), 2);
    }
}
