//! The paper's Section III-D claim as an executable property: under every
//! drain policy — most importantly TUS — the full simulator only ever
//! produces x86-TSO-allowed outcomes on the canonical litmus corpus.

use tus_sim::PolicyKind;
use tus_tso::{all_litmus_tests, check_conformance};

fn conformance_for(policy: PolicyKind, seeds: u64) {
    for t in all_litmus_tests() {
        let r = check_conformance(&t.program, policy, seeds);
        assert!(
            r.conforms(),
            "{policy}: litmus {} produced TSO-forbidden outcomes: {:?}\nallowed: {:?}",
            t.name,
            r.violations,
            r.allowed
        );
        // If the corpus says the witness is forbidden, the simulator must
        // never produce it (implied by conformance, but check the witness
        // directly for a sharper failure message).
        if !t.allowed {
            assert!(
                !r.observed.iter().any(|o| (t.witness)(o)),
                "{policy}: forbidden witness of {} observed",
                t.name
            );
        }
    }
}

#[test]
fn tus_conforms_to_tso() {
    conformance_for(PolicyKind::Tus, 14);
}

#[test]
fn baseline_conforms_to_tso() {
    conformance_for(PolicyKind::Baseline, 8);
}

#[test]
fn ssb_conforms_to_tso() {
    conformance_for(PolicyKind::Ssb, 8);
}

#[test]
fn csb_conforms_to_tso() {
    conformance_for(PolicyKind::Csb, 8);
}

#[test]
fn spb_conforms_to_tso() {
    conformance_for(PolicyKind::Spb, 8);
}

/// The TSO-only relaxed outcome of the store-buffering test (both loads
/// read 0) must actually be *observable* on the simulator — the SB and
/// the TUS machinery really do buffer stores past loads.
#[test]
fn sb_relaxation_is_observable() {
    let t = all_litmus_tests()
        .into_iter()
        .find(|t| t.name == "SB")
        .expect("SB test exists");
    let mut seen = false;
    for policy in PolicyKind::ALL {
        let r = check_conformance(&t.program, policy, 16);
        seen |= r.observed.iter().any(|o| (t.witness)(o));
    }
    assert!(
        seen,
        "no policy ever exhibited the store-buffering relaxation; the \
         store path is suspiciously strict"
    );
}

/// The store-forwarding test (n6): a core must be able to read its own
/// buffered store before it is globally visible.
#[test]
fn store_forwarding_observable_under_tus() {
    let t = all_litmus_tests()
        .into_iter()
        .find(|t| t.name == "n6")
        .expect("n6 exists");
    let r = check_conformance(&t.program, PolicyKind::Tus, 20);
    assert!(r.conforms());
}
