//! The canonical x86-TSO litmus corpus.
//!
//! Tests and classifications follow the x86-TSO paper (Owens, Sarkar &
//! Sewell, CACM 2010) and the usual herd naming. Each test carries a
//! *witness* predicate identifying the interesting outcome and whether
//! TSO allows it; `validate_reference_model` (in the test suite and
//! callable by downstream users) checks the operational model reproduces
//! every classification.

use crate::prog::dsl::*;
use crate::prog::{Outcome, Program};
use crate::refmodel::tso_outcomes;

/// One litmus test: a program, a named witness outcome, and whether
/// x86-TSO allows it.
pub struct LitmusTest {
    /// Conventional name ("SB", "MP", ...).
    pub name: &'static str,
    /// What the test demonstrates.
    pub description: &'static str,
    /// The program.
    pub program: Program,
    /// Recognizes the witness outcome.
    pub witness: fn(&Outcome) -> bool,
    /// Whether x86-TSO allows the witness.
    pub allowed: bool,
}

impl std::fmt::Debug for LitmusTest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LitmusTest")
            .field("name", &self.name)
            .field("allowed", &self.allowed)
            .finish()
    }
}

impl LitmusTest {
    /// Whether the witness is reachable under the operational TSO model.
    pub fn witness_reachable_under_tso(&self) -> bool {
        tso_outcomes(&self.program).iter().any(self.witness)
    }
}

/// The full corpus.
pub fn all_litmus_tests() -> Vec<LitmusTest> {
    vec![
        LitmusTest {
            name: "SB",
            description: "store buffering (Dekker): both loads may read 0",
            program: Program::new(vec![
                thread(vec![st(0, 1), ld(1)]),
                thread(vec![st(1, 1), ld(0)]),
            ]),
            witness: |o| o.regs[0] == [0] && o.regs[1] == [0],
            allowed: true,
        },
        LitmusTest {
            name: "SB+mfences",
            description: "fences restore SC for store buffering",
            program: Program::new(vec![
                thread(vec![st(0, 1), mfence(), ld(1)]),
                thread(vec![st(1, 1), mfence(), ld(0)]),
            ]),
            witness: |o| o.regs[0] == [0] && o.regs[1] == [0],
            allowed: false,
        },
        LitmusTest {
            name: "MP",
            description: "message passing: stale data after flag is forbidden",
            program: Program::new(vec![
                thread(vec![st(0, 1), st(1, 1)]),
                thread(vec![ld(1), ld(0)]),
            ]),
            witness: |o| o.regs[1] == [1, 0],
            allowed: false,
        },
        LitmusTest {
            name: "LB",
            description: "load buffering: loads never take values from the future",
            program: Program::new(vec![
                thread(vec![ld(0), st(1, 1)]),
                thread(vec![ld(1), st(0, 1)]),
            ]),
            witness: |o| o.regs[0] == [1] && o.regs[1] == [1],
            allowed: false,
        },
        LitmusTest {
            name: "IRIW",
            description: "independent readers see independent writes in the same order",
            program: Program::new(vec![
                thread(vec![st(0, 1)]),
                thread(vec![st(1, 1)]),
                thread(vec![ld(0), ld(1)]),
                thread(vec![ld(1), ld(0)]),
            ]),
            witness: |o| o.regs[2] == [1, 0] && o.regs[3] == [1, 0],
            allowed: false,
        },
        LitmusTest {
            name: "n6",
            description: "store-to-load forwarding lets a core see its own store early",
            program: Program::new(vec![
                thread(vec![st(0, 1), ld(0), ld(1)]),
                thread(vec![st(1, 1), st(0, 2)]),
            ]),
            witness: |o| o.regs[0] == [1, 0] && o.mem[0] == 1,
            allowed: true,
        },
        LitmusTest {
            name: "n5",
            description: "two stores to one location cannot be mutually stale",
            program: Program::new(vec![
                thread(vec![st(0, 1), ld(0)]),
                thread(vec![st(0, 2), ld(0)]),
            ]),
            witness: |o| o.regs[0] == [2] && o.regs[1] == [1],
            allowed: false,
        },
        LitmusTest {
            name: "n4b",
            description: "loads before stores to the same location stay ordered",
            program: Program::new(vec![
                thread(vec![ld(0), st(0, 1)]),
                thread(vec![ld(0), st(0, 2)]),
            ]),
            witness: |o| o.regs[0] == [2] && o.regs[1] == [1],
            allowed: false,
        },
        LitmusTest {
            name: "2+2W",
            description: "store-store order: criss-cross final state forbidden",
            program: Program::new(vec![
                thread(vec![st(0, 1), st(1, 2)]),
                thread(vec![st(1, 1), st(0, 2)]),
            ]),
            witness: |o| o.mem == [1, 1],
            allowed: false,
        },
        LitmusTest {
            name: "S",
            description: "write seen before an earlier write to another location is forbidden",
            program: Program::new(vec![
                thread(vec![st(0, 2), st(1, 1)]),
                thread(vec![ld(1), st(0, 1)]),
            ]),
            witness: |o| o.regs[1] == [1] && o.mem[0] == 2,
            allowed: false,
        },
        LitmusTest {
            name: "R",
            description: "a read may miss a remote store that loses the coherence race",
            program: Program::new(vec![
                thread(vec![st(0, 1), st(1, 1)]),
                thread(vec![st(1, 2), ld(0)]),
            ]),
            witness: |o| o.regs[1] == [0] && o.mem[1] == 2,
            allowed: true,
        },
        LitmusTest {
            name: "CoRR",
            description: "per-location coherence: reads of one location never go backwards",
            program: Program::new(vec![
                thread(vec![st(0, 1)]),
                thread(vec![ld(0), ld(0)]),
            ]),
            witness: |o| o.regs[1] == [1, 0],
            allowed: false,
        },
        LitmusTest {
            name: "CoWW",
            description: "store-store coherence to one location",
            program: Program::new(vec![thread(vec![st(0, 1), st(0, 2)])]),
            witness: |o| o.mem == [1],
            allowed: false,
        },
        LitmusTest {
            name: "WRC",
            description: "write-read causality: a write seen through a chain stays ordered",
            program: Program::new(vec![
                thread(vec![st(0, 1)]),
                thread(vec![ld(0), st(1, 1)]),
                thread(vec![ld(1), ld(0)]),
            ]),
            witness: |o| o.regs[1] == [1] && o.regs[2] == [1, 0],
            allowed: false,
        },
        LitmusTest {
            name: "SB+one-mfence",
            description: "a single fence does not restore SC for store buffering",
            program: Program::new(vec![
                thread(vec![st(0, 1), mfence(), ld(1)]),
                thread(vec![st(1, 1), ld(0)]),
            ]),
            witness: |o| o.regs[0] == [0] && o.regs[1] == [0],
            allowed: true,
        },
        LitmusTest {
            name: "IRIW+mfences",
            description: "fences cannot make IRIW disagreement appear",
            program: Program::new(vec![
                thread(vec![st(0, 1)]),
                thread(vec![st(1, 1)]),
                thread(vec![ld(0), mfence(), ld(1)]),
                thread(vec![ld(1), mfence(), ld(0)]),
            ]),
            witness: |o| o.regs[2] == [1, 0] && o.regs[3] == [1, 0],
            allowed: false,
        },
        LitmusTest {
            name: "CoRW",
            description: "a load before a store to the same location never sees that store",
            program: Program::new(vec![
                thread(vec![ld(0), st(0, 1)]),
                thread(vec![st(0, 2)]),
            ]),
            witness: |o| o.regs[0] == [1],
            allowed: false,
        },
        LitmusTest {
            name: "SB-3loc",
            description: "three-way store buffering relaxation",
            program: Program::new(vec![
                thread(vec![st(0, 1), ld(1)]),
                thread(vec![st(1, 1), ld(2)]),
                thread(vec![st(2, 1), ld(0)]),
            ]),
            witness: |o| o.regs[0] == [0] && o.regs[1] == [0] && o.regs[2] == [0],
            allowed: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The operational model must reproduce every published
    /// classification — this validates the reference before it is used
    /// to judge the simulator.
    #[test]
    fn reference_model_matches_published_classifications() {
        for t in all_litmus_tests() {
            assert_eq!(
                t.witness_reachable_under_tso(),
                t.allowed,
                "reference model misclassifies {}",
                t.name
            );
        }
    }

    #[test]
    fn corpus_names_unique() {
        let names: std::collections::BTreeSet<_> =
            all_litmus_tests().iter().map(|t| t.name).collect();
        assert_eq!(names.len(), all_litmus_tests().len());
    }

    #[test]
    fn every_program_is_small_enough_to_enumerate() {
        for t in all_litmus_tests() {
            assert!(t.program.ops() <= 12, "{} too large", t.name);
            let outs = tso_outcomes(&t.program);
            assert!(!outs.is_empty(), "{} has no outcomes", t.name);
        }
    }
}
