//! The coherence interconnect.
//!
//! [`Network`] models point-to-point latencies between the per-core cache
//! controllers and the directory. Two properties matter for protocol
//! correctness:
//!
//! 1. **Per-channel FIFO**: messages between the same (source, destination)
//!    pair are delivered in send order, even when jitter is enabled. The
//!    directory protocol relies on this (e.g. an eviction notice must not
//!    be overtaken by a later forward response).
//! 2. **Determinism**: with a fixed seed, delivery order is identical
//!    across runs. The optional `chaos_jitter` adds bounded random latency
//!    per message so the TSO litmus harness can explore interleavings.

use tus_sim::trace::{TraceEvent, TraceRecord, Tracer};
use tus_sim::{BoxPool, CoreId, Cycle, DelayQueue, Schedulable, SimRng};

use crate::line::LineData;
use crate::msgs::Msg;

/// A network endpoint: the directory or one core's cache controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// A core-side private cache controller.
    Core(CoreId),
    /// The directory / shared LLC.
    Dir,
}

impl Node {
    fn index(self, cores: usize) -> usize {
        match self {
            Node::Core(c) => c.index(),
            Node::Dir => cores,
        }
    }
}

/// Latency parameters of the interconnect, derived from Table I round
/// trips: an L1D-to-L2 leg is half the 16-cycle L2 round trip and an
/// L2-to-LLC leg half the 34-cycle L3 round trip, so one hop between a
/// core and the directory costs 8 + 17 = 25 cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetLatency {
    /// Core ↔ directory hop latency in cycles.
    pub hop: u64,
}

impl NetLatency {
    /// Derives hop latency from L2/L3 round trips.
    pub fn from_round_trips(l2_rt: u64, l3_rt: u64) -> Self {
        NetLatency {
            hop: l2_rt / 2 + l3_rt / 2 + 1,
        }
    }
}

impl Default for NetLatency {
    fn default() -> Self {
        NetLatency::from_round_trips(16, 34)
    }
}

/// The interconnect: one inbound queue per endpoint with per-channel FIFO
/// and optional jitter.
#[derive(Debug, Clone)]
pub struct Network {
    queues: Vec<DelayQueue<(Node, Msg)>>,
    last_delivery: Vec<Cycle>,
    cores: usize,
    latency: NetLatency,
    jitter: u64,
    rng: SimRng,
    sent: u64,
    trace_line: Option<tus_sim::LineAddr>,
    tracer: Tracer,
    /// Recycling pool for the line-data payloads carried by coherence
    /// messages. The network is the one component threaded through every
    /// hot path on both the core and directory sides, so it hosts the
    /// pool: producers draw boxes here, consumers return them after
    /// copying the payload out.
    data_pool: BoxPool<LineData>,
}

impl Network {
    /// Creates a network for `cores` controllers plus the directory.
    pub fn new(cores: usize, latency: NetLatency, jitter: u64, rng: SimRng) -> Self {
        let endpoints = cores + 1;
        Network {
            queues: (0..endpoints).map(|_| DelayQueue::new()).collect(),
            last_delivery: vec![Cycle::ZERO; endpoints * endpoints],
            cores,
            latency,
            jitter,
            rng,
            sent: 0,
            trace_line: None,
            tracer: Tracer::default(),
            data_pool: BoxPool::new(),
        }
    }

    /// A line-data box from the recycling pool (contents are stale — the
    /// caller must overwrite every byte it exposes).
    #[inline]
    pub fn alloc_data(&mut self) -> Box<LineData> {
        self.data_pool.alloc_with(|| [0u8; tus_sim::LINE_BYTES])
    }

    /// A pooled line-data box holding a copy of `src`.
    #[inline]
    pub fn alloc_data_copy(&mut self, src: &LineData) -> Box<LineData> {
        self.data_pool.alloc_copy_of(src)
    }

    /// Returns a message payload to the pool once its bytes are consumed.
    #[inline]
    pub fn recycle_data(&mut self, data: Box<LineData>) {
        self.data_pool.recycle(data);
    }

    /// Arms structured message tracing with a ring of `cap` records.
    pub fn trace_enable(&mut self, cap: usize) {
        self.tracer.enable(cap);
    }

    /// Drains the buffered trace records, oldest first.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        self.tracer.take()
    }

    /// Sends `msg` from `src` to `dst`, arriving after the hop latency
    /// (plus jitter), but never before an earlier message on the same
    /// channel.
    pub fn send(&mut self, src: Node, dst: Node, now: Cycle, msg: Msg) {
        let jitter = if self.jitter == 0 {
            0
        } else {
            self.rng.range(0, self.jitter + 1)
        };
        let nominal = now + self.latency.hop + jitter;
        let ch = src.index(self.cores) * (self.cores + 1) + dst.index(self.cores);
        let due = nominal.max(self.last_delivery[ch]);
        self.last_delivery[ch] = due;
        if let Some(watch) = self.trace_line {
            if msg.line() == watch {
                eprintln!("[net {now}] {src:?} -> {dst:?} (due {due}): {msg:?}");
            }
        }
        self.tracer
            .emit(now, 0, TraceEvent::NetMsg { kind: msg.label() });
        self.queues[dst.index(self.cores)].push(due, (src, msg));
        self.sent += 1;
    }

    /// Enables eprintln-tracing of every message touching `line`
    /// (protocol debugging).
    pub fn trace_line(&mut self, line: Option<tus_sim::LineAddr>) {
        self.trace_line = line;
    }

    /// Pops the next message due at `dst` by cycle `now`.
    pub fn recv(&mut self, dst: Node, now: Cycle) -> Option<(Node, Msg)> {
        self.queues[dst.index(self.cores)].pop_due(now)
    }

    /// Whether any message is still in flight anywhere.
    pub fn idle(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Number of messages currently in flight (deadlock diagnostics).
    pub fn in_flight(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Total messages ever sent (traffic statistic).
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Configured hop latency.
    pub fn hop_latency(&self) -> u64 {
        self.latency.hop
    }

    /// Delivery cycle of the earliest in-flight message at any endpoint.
    ///
    /// Jitter is drawn in [`Network::send`], never while a message waits,
    /// so the earliest delivery cycle is fixed once the message is queued —
    /// which makes it safe for the idle-skipping kernel to jump to it.
    pub fn next_due(&self) -> Option<Cycle> {
        self.queues.iter().filter_map(|q| q.next_due()).min()
    }

    /// Delivery cycle of the earliest in-flight message addressed to
    /// `dst` (same fixed-once-queued guarantee as [`Network::next_due`]).
    /// The event-driven kernel uses this to wake exactly the unit a
    /// delivery is about to mutate.
    pub fn next_due_for(&self, dst: Node) -> Option<Cycle> {
        self.queues[dst.index(self.cores)].next_due()
    }
}

impl Schedulable for Network {
    fn next_work(&self, _now: Cycle) -> Option<Cycle> {
        self.next_due()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msgs::ReqKind;
    use tus_sim::LineAddr;

    fn req(line: u64) -> Msg {
        Msg::Req {
            core: CoreId::new(0),
            line: LineAddr::new(line),
            kind: ReqKind::GetS,
            prefetch: false,
            pts: 0,
        }
    }

    #[test]
    fn delivery_after_hop_latency() {
        let mut n = Network::new(1, NetLatency { hop: 10 }, 0, SimRng::seed(1));
        n.send(Node::Core(CoreId::new(0)), Node::Dir, Cycle::new(5), req(1));
        assert!(n.recv(Node::Dir, Cycle::new(14)).is_none());
        assert!(n.recv(Node::Dir, Cycle::new(15)).is_some());
    }

    #[test]
    fn per_channel_fifo_even_with_jitter() {
        let mut n = Network::new(1, NetLatency { hop: 5 }, 50, SimRng::seed(42));
        let src = Node::Core(CoreId::new(0));
        for i in 0..100 {
            n.send(src, Node::Dir, Cycle::new(i), req(i));
        }
        let mut last = 0;
        let mut got = 0;
        for t in 0..1000 {
            while let Some((_, m)) = n.recv(Node::Dir, Cycle::new(t)) {
                let l = m.line().raw();
                assert!(got == 0 || l > last, "FIFO violated: {l} after {last}");
                last = l;
                got += 1;
            }
        }
        assert_eq!(got, 100);
        assert!(n.idle());
    }

    #[test]
    fn separate_destinations_do_not_interfere() {
        let mut n = Network::new(2, NetLatency { hop: 1 }, 0, SimRng::seed(1));
        n.send(Node::Dir, Node::Core(CoreId::new(1)), Cycle::new(0), req(7));
        assert!(n.recv(Node::Core(CoreId::new(0)), Cycle::new(10)).is_none());
        let (src, m) = n.recv(Node::Core(CoreId::new(1)), Cycle::new(10)).expect("due");
        assert_eq!(src, Node::Dir);
        assert_eq!(m.line(), LineAddr::new(7));
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let run = |seed| {
            let mut n = Network::new(1, NetLatency { hop: 2 }, 20, SimRng::seed(seed));
            let mut order = Vec::new();
            n.send(Node::Core(CoreId::new(0)), Node::Dir, Cycle::ZERO, req(1));
            n.send(Node::Dir, Node::Core(CoreId::new(0)), Cycle::ZERO, req(2));
            for t in 0..100 {
                if n.recv(Node::Dir, Cycle::new(t)).is_some() {
                    order.push((t, 0));
                }
                if n.recv(Node::Core(CoreId::new(0)), Cycle::new(t)).is_some() {
                    order.push((t, 1));
                }
            }
            order
        };
        assert_eq!(run(9), run(9));
    }
}
